// Algorithm Zero Radius (Fig. 2): preference reconstruction for
// communities that agree *exactly*.
//
// Recursive halving: split players and objects in half; each player
// half reconstructs its own object half recursively, then adopts the
// other half's result by voting + Select with distance bound 0. Leaf
// instances (min(|P|, |O|) below the 8c·ln(n)/alpha threshold) probe
// everything. Theorem 3.1: with >= alpha*n players sharing one vector,
// all of them output it w.h.p. within O(log n / alpha) probes each.
//
// The implementation is generic over the *value space* because Large
// Radius (step 4) reruns Zero Radius where an "object" is a whole
// object group O_l and its "value" is one of the O(1/alpha) Coalesce
// candidates for that group: probing such a virtual object means
// running Select over the candidates on the group's primitive objects.
//
// Space concept:
//   typename Space::Value           — regular + totally ordered
//   Value probe(PlayerId, uint32_t) — probe object by *space index*,
//                                     charging the player's cost
//   (optional) typename Space::Row  — packed row representation; when
//                                     it is bits::BitVector the whole
//                                     recursion runs word-parallel
//                                     (leaf rows, votes, Select-0,
//                                     publishes) instead of on byte
//                                     vectors. Values must be 0/1.
//   (optional) void publish(std::string_view channel, PlayerId,
//                           const Row& | std::span<const Value>)
//                                   — mirror posts to a billboard
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <tuple>
#include <type_traits>
#include <vector>

#include "tmwia/bits/bitvector.hpp"
#include "tmwia/core/params.hpp"
#include "tmwia/engine/thread_pool.hpp"
#include "tmwia/matrix/ids.hpp"
#include "tmwia/obs/flight_recorder.hpp"
#include "tmwia/rng/partition.hpp"
#include "tmwia/rng/rng.hpp"

namespace tmwia::core {

using matrix::PlayerId;

/// Leaf threshold of Fig. 2 step 1: min(|P|, |O|) below this probes
/// everything.
inline std::size_t zero_radius_leaf_threshold(std::size_t n_total, double alpha,
                                              const Params& params) {
  const double ln_n = std::log(static_cast<double>(std::max<std::size_t>(n_total, 3)));
  const double t = params.zr_leaf_c * ln_n / alpha;
  return std::max(params.zr_min_leaf, static_cast<std::size_t>(std::ceil(t)));
}

/// The shared-coin halving of one recursion node (Fig. 2 step 2),
/// returned as position lists into the node's player/object lists. Both
/// the centralized engine below and the distributed per-player strategy
/// (zero_radius_strategy.hpp) derive the identical tree from the same
/// root rng, which is what makes their outputs bit-for-bit comparable.
struct ZeroRadiusSplit {
  std::vector<std::uint32_t> p1, p2;  ///< player positions per half
  std::vector<std::uint32_t> o1, o2;  ///< object positions per half
};

inline ZeroRadiusSplit zero_radius_node_split(std::size_t n_players, std::size_t n_objects,
                                              const rng::Rng& rng, std::uint64_t node_tag) {
  auto index_list = [](std::size_t n) {
    std::vector<std::uint32_t> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint32_t>(i);
    return v;
  };
  rng::Rng split_rng = rng.split(node_tag, 0x5eed);
  ZeroRadiusSplit s;
  std::tie(s.p1, s.p2) = rng::random_half_split(index_list(n_players), split_rng);
  std::tie(s.o1, s.o2) = rng::random_half_split(index_list(n_objects), split_rng);
  return s;
}

namespace detail {

// Row representation of one player's per-object values. A space opts
// into the packed form by declaring `using Row = bits::BitVector`
// (BitSpace does); everything else gets std::vector<Value>. All row
// access below goes through these helpers so the recursion body is
// written once for both shapes.
template <typename Space, typename = void>
struct RowTraits {
  static constexpr bool packed = false;
  using Row = std::vector<typename Space::Value>;
};

template <typename Space>
struct RowTraits<Space, std::void_t<typename Space::Row>> {
  static constexpr bool packed = true;
  using Row = typename Space::Row;
  static_assert(std::is_same_v<Row, bits::BitVector>,
                "packed Zero Radius rows must be bits::BitVector");
};

template <typename Space>
typename RowTraits<Space>::Row::value_type row_value_type_probe();  // unused, doc only

template <typename Space, typename Row, typename Value>
void row_set(Row& row, std::size_t j, Value v) {
  if constexpr (RowTraits<Space>::packed) {
    row.set(j, v != Value{0});
  } else {
    row[j] = v;
  }
}

template <typename Space, typename Row>
int row_cmp(const Row& a, const Row& b) {
  if constexpr (RowTraits<Space>::packed) {
    return a.lex_compare(b);
  } else {
    if (a < b) return -1;
    if (b < a) return 1;
    return 0;
  }
}

// Optional degradation hooks of the Space concept (see faults/). A
// space that tracks fault state exposes:
//   bool is_failed(PlayerId)                 — player crashed/degraded;
//                                              skip its probes, exclude
//                                              it from votes
//   bool post_lost(PlayerId, string_view)    — this player's post on
//                                              this channel was lost
//   void note_orphan(PlayerId)               — player lost its quorum
// Spaces without the hooks (tests, plain adapters) behave exactly as
// before — the helpers compile to constants.

template <typename Space>
bool space_is_failed(Space& space, PlayerId p) {
  if constexpr (requires { { space.is_failed(p) } -> std::convertible_to<bool>; }) {
    return space.is_failed(p);
  } else {
    (void)space;
    (void)p;
    return false;
  }
}

template <typename Space>
bool space_post_lost(Space& space, PlayerId p, std::string_view channel) {
  if constexpr (requires { { space.post_lost(p, channel) } -> std::convertible_to<bool>; }) {
    return space.post_lost(p, channel);
  } else {
    (void)space;
    (void)p;
    (void)channel;
    return false;
  }
}

template <typename Space>
bool space_faults_active(Space& space) {
  if constexpr (requires { { space.faults_active() } -> std::convertible_to<bool>; }) {
    return space.faults_active();
  } else {
    (void)space;
    return false;
  }
}

/// Whether the space's corrupt_posts hook would rewrite anything right
/// now. Only meaningful when the hook exists (the caller gates on
/// that); a space without the activity query is assumed to rewrite.
template <typename Space>
bool space_corrupts_posts(Space& space) {
  if constexpr (requires { { space.corrupts_posts() } -> std::convertible_to<bool>; }) {
    return space.corrupts_posts();
  } else {
    (void)space;
    return true;
  }
}

template <typename Space>
void space_note_orphan(Space& space, PlayerId p) {
  if constexpr (requires { space.note_orphan(p); }) {
    space.note_orphan(p);
  } else {
    (void)space;
    (void)p;
  }
}

/// Select with distance bound 0 over generic value-rows: probe
/// distinguishing positions in order, drop candidates on their first
/// mismatch. Returns the surviving candidate's index (ties and the
/// all-eliminated fallback resolve to fewest mismatches, then
/// lexicographic order). The packed variant aggregates alive
/// candidates into word-parallel any0/any1 masks whose AND marks every
/// distinguishing coordinate at once — the probe sequence is identical
/// to the per-coordinate scan it replaces.
template <typename Space, typename Row>
std::size_t select_zero(Space& space, PlayerId p, const std::vector<Row>& cands,
                        std::span<const std::uint32_t> object_ids) {
  const std::size_t k = cands.size();
  if (k == 1) return 0;
  // Per-thread scratch: this runs once per adopter per recursion node
  // (millions of calls), and BitSpace probes never re-enter it.
  thread_local std::vector<bool> alive;
  thread_local std::vector<std::size_t> mismatches;
  alive.assign(k, true);
  mismatches.assign(k, 0);
  std::size_t alive_count = k;

  if constexpr (RowTraits<Space>::packed) {
    const std::size_t m = object_ids.size();
    const std::size_t nw = cands[0].words().size();
    thread_local std::vector<std::uint64_t> any0;
    thread_local std::vector<std::uint64_t> any1;
    any0.resize(nw);
    any1.resize(nw);
    const auto rebuild = [&] {
      std::fill(any0.begin(), any0.end(), 0);
      std::fill(any1.begin(), any1.end(), 0);
      for (std::size_t i = 0; i < k; ++i) {
        if (!alive[i]) continue;
        const auto words = cands[i].words();
        for (std::size_t w = 0; w < nw; ++w) {
          any0[w] |= ~words[w];
          any1[w] |= words[w];
        }
      }
      const std::size_t rem = m % 64;
      if (rem != 0 && nw > 0) any0[nw - 1] &= (std::uint64_t{1} << rem) - 1;
    };
    rebuild();
    for (std::size_t w = 0; w < nw && alive_count > 1; ++w) {
      std::uint64_t dmask = any0[w] & any1[w];
      while (dmask != 0 && alive_count > 1) {
        const int bit_pos = std::countr_zero(dmask);
        const std::size_t j = w * 64 + static_cast<std::size_t>(bit_pos);
        const bool bit = space.probe(p, object_ids[j]) != typename Space::Value{0};
        const std::uint64_t jbit = std::uint64_t{1} << bit_pos;
        for (std::size_t i = 0; i < k; ++i) {
          if (!alive[i]) continue;
          if (((cands[i].words()[w] & jbit) != 0) != bit) {
            ++mismatches[i];
            alive[i] = false;
            --alive_count;
          }
        }
        // A probe at a distinguishing coordinate always eliminates
        // someone, so refresh the masks before the next coordinate.
        const std::uint64_t done =
            bit_pos == 63 ? ~std::uint64_t{0} : ((jbit << 1) - 1);
        rebuild();
        dmask = any0[w] & any1[w] & ~done;
      }
    }
  } else {
    for (std::size_t j = 0; j < object_ids.size() && alive_count > 1; ++j) {
      bool differs = false;
      std::size_t first_alive = k;
      for (std::size_t i = 0; i < k && !differs; ++i) {
        if (!alive[i]) continue;
        if (first_alive == k) {
          first_alive = i;
        } else if (!(cands[i][j] == cands[first_alive][j])) {
          differs = true;
        }
      }
      if (!differs) continue;
      const auto val = space.probe(p, object_ids[j]);
      for (std::size_t i = 0; i < k; ++i) {
        if (alive[i] && !(cands[i][j] == val)) {
          ++mismatches[i];
          alive[i] = false;
          --alive_count;
        }
      }
    }
  }

  std::size_t best = 0;
  bool best_alive = alive[0];
  for (std::size_t i = 1; i < k; ++i) {
    const bool better_liveness = alive[i] && !best_alive;
    const bool same_liveness = alive[i] == best_alive;
    if (better_liveness ||
        (same_liveness &&
         (mismatches[i] < mismatches[best] ||
          (mismatches[i] == mismatches[best] && row_cmp<Space>(cands[i], cands[best]) < 0)))) {
      best = i;
      best_alive = alive[i];
    }
  }
  return best;
}

/// Sort row pointers lexicographically and visit each run of equal
/// rows: the shared grouping engine behind the vote tallies below
/// (replaces a std::map of whole rows — same ascending order, no
/// node-per-row allocation).
template <typename Space, typename Row, typename Visit>
void for_each_row_group(const std::vector<Row>& posts, Visit&& visit) {
  std::vector<const Row*> ptrs;
  ptrs.reserve(posts.size());
  for (const auto& r : posts) ptrs.push_back(&r);
  std::sort(ptrs.begin(), ptrs.end(), [](const Row* a, const Row* b) {
    return row_cmp<Space>(*a, *b) < 0;
  });
  std::size_t i = 0;
  while (i < ptrs.size()) {
    std::size_t j = i + 1;
    while (j < ptrs.size() && row_cmp<Space>(*ptrs[i], *ptrs[j]) == 0) ++j;
    visit(*ptrs[i], j - i);
    i = j;
  }
}

/// Group equal rows and return those with >= min_votes occurrences,
/// sorted lexicographically (deterministic candidates).
template <typename Space, typename Row>
std::vector<Row> popular_vectors(const std::vector<Row>& posts, std::size_t min_votes) {
  std::vector<Row> out;
  for_each_row_group<Space>(posts, [&](const Row& row, std::size_t count) {
    if (count >= min_votes) out.push_back(row);
  });
  return out;
}

/// The orphan-adoption candidate list: the `limit` most-supported
/// distinct rows of `posts` (ties broken lexicographically). Used when
/// a vote loses quorum and the adopters fall back to whatever the
/// survivors published.
template <typename Space, typename Row>
std::vector<Row> top_vectors(const std::vector<Row>& posts, std::size_t limit) {
  std::vector<std::pair<std::size_t, const Row*>> ranked;
  for_each_row_group<Space>(posts, [&](const Row& row, std::size_t count) {
    ranked.emplace_back(count, &row);
  });
  // for_each_row_group visits ascending, so a stable sort by count
  // descending keeps the lexicographic tie-break.
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  if (ranked.size() > limit) ranked.resize(limit);
  std::vector<Row> out;
  out.reserve(ranked.size());
  for (const auto& [c, row] : ranked) out.push_back(*row);
  return out;
}

template <typename Space>
struct ZeroRadiusRun {
  Space& space;
  double alpha;
  const Params& params;
  std::size_t n_total;
  std::size_t threshold;

  using Value = typename Space::Value;
  using Row = typename RowTraits<Space>::Row;
  using Outputs = std::vector<Row>;  // per player, per object

  Outputs run(const std::vector<PlayerId>& players, const std::vector<std::uint32_t>& objects,
              rng::Rng rng, std::uint64_t node_tag) {
    Outputs out(players.size(), Row(objects.size()));
    if (players.empty() || objects.empty()) return out;

    if (std::min(players.size(), objects.size()) < threshold) {
      // Step 1: leaf — every player probes every object. Crashed /
      // degraded players sit the leaf out (their rows stay default and
      // they are excluded from votes higher up).
      engine::parallel_for(0, players.size(), [&](std::size_t i) {
        if (space_is_failed(space, players[i])) return;
        if constexpr (requires {
                        space.probe_row(players[i], std::span<const std::uint32_t>(objects),
                                        out[i]);
                      }) {
          // Space exposes a batched row probe (BitSpace → oracle
          // probe_block): one call per leaf row instead of one per bit.
          space.probe_row(players[i], std::span<const std::uint32_t>(objects), out[i]);
        } else if constexpr (RowTraits<Space>::packed) {
          // Pack 64 probe results into a word before touching the row:
          // one store per word instead of a read-modify-write per bit
          // (leaves run millions of times; this loop is the single
          // hottest site in the Small Radius experiments).
          std::uint64_t word = 0;
          for (std::size_t j = 0; j < objects.size(); ++j) {
            word |= static_cast<std::uint64_t>(space.probe(players[i], objects[j]))
                    << (j % 64);
            if (j % 64 == 63) {
              out[i].set_word(j / 64, word);
              word = 0;
            }
          }
          if (objects.size() % 64 != 0) out[i].set_word(objects.size() / 64, word);
        } else {
          for (std::size_t j = 0; j < objects.size(); ++j) {
            row_set<Space>(out[i], j, space.probe(players[i], objects[j]));
          }
        }
      });
      publish_all(players, out, node_tag);
      return out;
    }

    // Step 2: random halving of players and objects (shared coins).
    const auto split = zero_radius_node_split(players.size(), objects.size(), rng, node_tag);
    const auto& p1_idx = split.p1;
    const auto& p2_idx = split.p2;
    const auto& o1_idx = split.o1;
    const auto& o2_idx = split.o2;

    const auto p1 = gather(players, p1_idx);
    const auto p2 = gather(players, p2_idx);
    const auto o1 = gather(objects, o1_idx);
    const auto o2 = gather(objects, o2_idx);

    // Step 3: both halves recurse on their own corner.
    Outputs r1 = run(p1, o1, rng, node_tag * 2 + 1);
    Outputs r2 = run(p2, o2, rng, node_tag * 2 + 2);

    // For packed rows every scatter below deposits through the same
    // two position sets, so build each set's word mask once per node
    // and reuse it for every player (adopters and own-half alike).
    const Mask m1 = make_mask(o1_idx, objects.size());
    const Mask m2 = make_mask(o2_idx, objects.size());

    // Step 4: cross-adoption via voting + Select with bound 0. The
    // posting half published its outputs under its child tag, which is
    // what the post-loss filter keys on.
    adopt(p1, o2, r2, p2, out, p1_idx, o2_idx, m2, node_tag * 2 + 2);
    adopt(p2, o1, r1, p1, out, p2_idx, o1_idx, m1, node_tag * 2 + 1);

    // Own-half results copy straight through.
    scatter_outputs(r1, p1_idx, o1_idx, m1, out);
    scatter_outputs(r2, p2_idx, o2_idx, m2, out);

    publish_all(players, out, node_tag);
    return out;
  }

 private:
  static std::vector<std::uint32_t> index_list(std::size_t n) {
    std::vector<std::uint32_t> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint32_t>(i);
    return v;
  }

  template <typename T>
  static std::vector<T> gather(const std::vector<T>& src,
                               const std::vector<std::uint32_t>& idx) {
    std::vector<T> out;
    out.reserve(idx.size());
    for (std::uint32_t i : idx) out.push_back(src[i]);
    return out;
  }

  /// Position-set type for the per-node scatter masks: a packed word
  /// mask when rows are packed (reused across every row of the node),
  /// nothing otherwise.
  struct NoMask {};
  using Mask = std::conditional_t<RowTraits<Space>::packed, bits::BitVector, NoMask>;

  static Mask make_mask(const std::vector<std::uint32_t>& positions, std::size_t n) {
    if constexpr (RowTraits<Space>::packed) {
      bits::BitVector mask(n);
      for (std::uint32_t p : positions) mask.set(p, true);
      return mask;
    } else {
      (void)positions;
      (void)n;
      return {};
    }
  }

  /// row[obj_pos[j]] = src[j] for all j — one masked word-deposit per
  /// destination word for packed rows, element loop otherwise.
  static void scatter_row(Row& row, const Row& src,
                          const std::vector<std::uint32_t>& obj_pos, const Mask& mask) {
    if constexpr (RowTraits<Space>::packed) {
      (void)obj_pos;
      row.scatter_masked(src, mask);
    } else {
      (void)mask;
      for (std::size_t j = 0; j < obj_pos.size(); ++j) row[obj_pos[j]] = src[j];
    }
  }

  /// Players `adopters` (positions `adopter_pos` in the parent lists)
  /// adopt the other half's outputs `posts` for objects `object_ids`
  /// (positions `obj_pos` in the parent object list). `poster_tag` is
  /// the recursion tag the posting half published under (the post-loss
  /// filter keys on it).
  void adopt(const std::vector<PlayerId>& adopters, const std::vector<std::uint32_t>& object_ids,
             const Outputs& posts, const std::vector<PlayerId>& posters, Outputs& out,
             const std::vector<std::uint32_t>& adopter_pos,
             const std::vector<std::uint32_t>& obj_pos, const Mask& obj_mask,
             std::uint64_t poster_tag) {
    // Byzantine hook: the space may rewrite what individual posters
    // *publish* for voting (dishonest eBay users, per the paper's
    // intro) — their own outputs are untouched, only their influence
    // on the vote is. Probing-based Select then defends the adopters:
    // a forged popular vector is eliminated the first time it disagrees
    // with the adopter's own truth on a distinguishing coordinate.
    //
    // Both the rewrite and the survivor filter below mutate the post
    // list; the fault-free, honest run (the common case by far) needs
    // neither, so the posts are only copied when a fault injector or an
    // active corrupter is present.
    constexpr bool kHasCorrupt =
        requires(Space& s, const std::vector<PlayerId>& ps,
                 std::span<const std::uint32_t> objs, Outputs& posted) {
          s.corrupt_posts(ps, objs, posted);
        };
    bool mutate = space_faults_active(space);
    if constexpr (kHasCorrupt) mutate = mutate || space_corrupts_posts(space);

    Outputs filtered;
    const Outputs* votable = &posts;
    std::size_t kept = posts.size();
    if (mutate) {
      filtered = posts;
      if constexpr (kHasCorrupt) {
        space.corrupt_posts(posters, std::span(object_ids), filtered);
      }
      // Degradation: crashed/degraded posters and lost posts never made
      // it to the billboard — the vote and its quorum threshold are
      // taken over the survivors only. With no faults this keeps every
      // post and the paper's threshold exactly.
      const std::string poster_channel = "zr/" + std::to_string(poster_tag);
      kept = 0;
      for (std::size_t i = 0; i < posters.size(); ++i) {
        if (space_is_failed(space, posters[i]) ||
            space_post_lost(space, posters[i], poster_channel)) {
          continue;
        }
        if (kept != i) filtered[kept] = std::move(filtered[i]);
        ++kept;
      }
      filtered.resize(kept);
      votable = &filtered;
    }

    const auto min_votes = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(params.zr_vote_frac * alpha * static_cast<double>(kept))));
    std::vector<Row> candidates = popular_vectors<Space>(*votable, min_votes);

    // Orphan adoption: the committee lost its quorum (mass crash or
    // post loss). Rather than leave the adopters with garbage, fall
    // back to the surviving posts themselves, most-supported first —
    // probing-based Select still rejects anything that disagrees with
    // the adopter's own truth.
    //
    // Strictly gated on an ACTIVE fault injector: in a fault-free run a
    // below-quorum vote means the community is smaller than this
    // phase's alpha, and the paper's model (Fig. 2 step 4) adopts
    // nothing. Falling back here anyway would let a phase resolve
    // communities below its alpha scale — a silent protocol deviation
    // (it broke E10's anytime blindness verdict) and a divergence from
    // the distributed ZeroRadiusStrategy, which has no such fallback.
    bool orphan_fallback = false;
    if (candidates.empty() && !votable->empty() && space_faults_active(space)) {
      candidates = top_vectors<Space>(*votable, params.ft_orphan_candidates);
      orphan_fallback = true;
    }
    // Community-size record per adoption vote — also a serial drain
    // point for the recorder's staged per-player probe events, keeping
    // staged memory bounded by one recursion node's worth of probes.
    if (auto* rec = obs::recorder()) {
      rec->note("zr.adopt", kept, candidates.size());
    }
    if (candidates.empty()) {
      // No surviving post at all: adopters keep defaults for this half.
      for (const PlayerId a : adopters) {
        if (!space_is_failed(space, a)) space_note_orphan(space, a);
      }
      return;
    }

    engine::parallel_for(0, adopters.size(), [&](std::size_t i) {
      if (space_is_failed(space, adopters[i])) return;
      if (orphan_fallback) space_note_orphan(space, adopters[i]);
      const std::size_t choice =
          candidates.size() == 1
              ? 0
              : select_zero(space, adopters[i], candidates, std::span(object_ids));
      scatter_row(out[adopter_pos[i]], candidates[choice], obj_pos, obj_mask);
    });
  }

  static void scatter_outputs(const Outputs& part, const std::vector<std::uint32_t>& player_pos,
                              const std::vector<std::uint32_t>& obj_pos, const Mask& obj_mask,
                              Outputs& out) {
    for (std::size_t i = 0; i < player_pos.size(); ++i) {
      scatter_row(out[player_pos[i]], part[i], obj_pos, obj_mask);
    }
  }

  void publish_all(const std::vector<PlayerId>& players, const Outputs& out,
                   std::uint64_t node_tag) {
    constexpr bool kPublishRow = requires(Space& s, PlayerId p, const Row& r) {
      s.publish(std::string_view{}, p, r);
    };
    constexpr bool kPublishSpan = requires(Space& s, PlayerId p, std::span<const Value> v) {
      s.publish(std::string_view{}, p, v);
    };
    if constexpr (kPublishRow || kPublishSpan) {
      const std::string channel = "zr/" + std::to_string(node_tag);
      if constexpr (requires {
                      space.publish_rows(std::string_view{}, std::span<const PlayerId>(players),
                                         std::span<const Row>(out));
                    }) {
        // Batched mirror: one channel resolution + board lock per node
        // (the failed-player skip moves inside publish_rows).
        space.publish_rows(channel, players, out);
      } else {
        for (std::size_t i = 0; i < players.size(); ++i) {
          if (space_is_failed(space, players[i])) continue;  // nothing to post
          if constexpr (kPublishRow) {
            space.publish(channel, players[i], out[i]);
          } else {
            space.publish(channel, players[i], std::span<const Value>(out[i]));
          }
        }
      }
    }
  }
};

}  // namespace detail

/// Run Zero Radius over `players` and `objects` in `space`.
/// Returns per-player rows aligned with `objects` (row i belongs to
/// players[i]): packed bits::BitVector rows for spaces that declare
/// `Row`, std::vector<Value> otherwise. `rng` carries the shared
/// coins; `n_total` is the system size entering the leaf threshold and
/// is normally players.size() of the top-level call.
template <typename Space>
std::vector<typename detail::RowTraits<Space>::Row> zero_radius(
    Space& space, const std::vector<PlayerId>& players,
    const std::vector<std::uint32_t>& objects, double alpha, const Params& params,
    rng::Rng rng, std::size_t n_total) {
  detail::ZeroRadiusRun<Space> run{space, alpha, params, n_total,
                                   zero_radius_leaf_threshold(n_total, alpha, params)};
  return run.run(players, objects, std::move(rng), 1);
}

}  // namespace tmwia::core
