// Tunable constants of the algorithm tower.
//
// The paper fixes constants for the proofs (leaf threshold 8c·ln n/α,
// s >= 100·D^{3/2} parts, vote fractions α/2 and α/5, stitch bound 5D).
// Those constants are asymptotically safe but far from tight; at
// benchable sizes (n <= 4096) the published values degenerate — e.g.
// s = 100·D^{3/2} > m turns every ZeroRadius instance into a leaf that
// probes everything. Every constant therefore lives here, with two
// profiles:
//  * Params::paper()     — the published constants, used by the tests
//                          that check the *bounds* (which only get
//                          easier with bigger constants);
//  * Params::practical() — scaled-down constants that expose the
//                          asymptotic regime at laptop scale, used by
//                          the experiments. EXPERIMENTS.md reports which
//                          profile each number was measured under.
#pragma once

#include <cstddef>
#include <cstdint>

namespace tmwia::core {

struct Params {
  // --- Zero Radius (Fig. 2) ---
  /// Leaf when min(|P|, |O|) < zr_leaf_c * ln(n) / alpha  (step 1).
  double zr_leaf_c = 8.0;
  /// Hard floor on the leaf threshold (degenerate-size guard).
  std::size_t zr_min_leaf = 2;
  /// Adopt vectors voted by >= zr_vote_frac * alpha * |P''| players
  /// (step 4; the paper uses alpha/2, i.e. 0.5).
  double zr_vote_frac = 0.5;

  // --- Small Radius (Fig. 4) ---
  /// s = max(1, ceil(sr_s_mult * D^1.5)) object parts (Lemma 4.1 uses
  /// 100; any constant with s = Theta(D^1.5) preserves the analysis
  /// shape, trading failure probability per iteration against cost).
  double sr_s_mult = 100.0;
  /// Confidence iterations K; 0 means ceil(log2 n) (the paper's K).
  std::size_t sr_K = 0;
  /// Vote threshold for U_i: alpha/sr_vote_div fraction (paper: 5).
  double sr_vote_div = 5.0;
  /// Step 1c Select bound = D; step 2 Select bound = sr_final_mult * D
  /// (paper: 5).
  double sr_final_mult = 5.0;

  // --- Coalesce (Fig. 6) ---
  /// Merge while dtilde(v, v') <= co_merge_mult * D (paper: 5).
  double co_merge_mult = 5.0;

  // --- Large Radius (Fig. 5) ---
  /// Number of object parts L = max(1, ceil(lr_parts_c * D / log2 n)).
  double lr_parts_c = 1.0;
  /// Per-part distance budget lambda = min(D, lr_lambda_mult * log2 n).
  double lr_lambda_mult = 1.0;
  /// Target players per part = lr_players_mult * log2(n) / alpha;
  /// each player joins enough parts to meet it in expectation.
  double lr_players_mult = 1.0;
  /// Coalesce distance parameter = lr_coalesce_mult * lambda. Typical
  /// players' per-group outputs sit within (2*sr_final_mult + 1)*lambda
  /// of each other (their Small Radius error is sr_final_mult*lambda
  /// each, plus their true distance <= lambda), hence the default 11.
  double lr_coalesce_mult = 11.0;
  /// Virtual-probe Select bound = lr_select_mult * (coalesce distance):
  /// Theorem 5.3 puts the unique representative within 2x the Coalesce
  /// distance of every typical player.
  double lr_select_mult = 2.0;

  // --- RSelect (Fig. 7) ---
  /// Probes per candidate pair = rs_c * log2 n (paper: c log n).
  double rs_c = 4.0;
  /// Loser threshold fraction (paper: 2/3).
  double rs_majority = 2.0 / 3.0;

  // --- Robustness (fault-injected runs) ---
  /// When a vote loses quorum (mass crash / post loss), orphaned
  /// adopters fall back to the surviving posts themselves; this caps
  /// how many distinct surviving vectors they are willing to Select
  /// among (most-supported first).
  std::size_t ft_orphan_candidates = 8;

  // --- Unknown D (Section 6) ---
  /// Distance guesses D = 0, 1, 2, 4, ... up to m.
  /// Final pick uses RSelect.

  /// The published constants.
  static Params paper() { return {}; }

  /// Laptop-scale constants: same Theta(.) shapes, smaller multipliers.
  /// zr_leaf_c cannot be cut as hard as the rest: the leaf threshold is
  /// what guarantees (via Chernoff) that every recursion node keeps
  /// >= alpha/2 typical players — at leaf_c = 2 a 32-player leaf fails
  /// that with a few percent probability and the corruption of a
  /// player's *own* half is never revisited higher in the tree. The
  /// lower vote fraction compensates on the other side (a popular-group
  /// miss needs a 4x deviation instead of 2x) at the price of a few
  /// more Select candidates.
  /// The Large Radius constants are the tightest squeeze: with
  /// n ~ 10^2..10^3 a group holds m/L ~ 10*log n objects, and random
  /// non-community vectors sit ~ m/(2L) ~ 5*log n apart, so the
  /// Coalesce distance (lr_coalesce_mult * lambda) must stay below that
  /// while still covering the typical players' output spread, and the
  /// merge bound (co_merge_mult * coalesce distance) must not bridge
  /// distinct communities. The published 11x/5x constants only separate
  /// once log n << m/L, i.e. at much larger n.
  static Params practical() {
    Params p;
    p.zr_leaf_c = 4.0;
    p.zr_vote_frac = 0.25;
    p.sr_s_mult = 2.0;
    p.sr_K = 4;
    p.lr_players_mult = 2.0;
    p.lr_coalesce_mult = 3.0;
    p.co_merge_mult = 1.5;
    p.rs_c = 6.0;
    return p;
  }
};

}  // namespace tmwia::core
