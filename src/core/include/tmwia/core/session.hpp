// tmwia::Session — the five-line front door to the library.
//
//   tmwia::Session session(inst.matrix);
//   auto report = session.alpha(0.5).seed(42).run();
//   // report.outputs[p] estimates player p's hidden preference row.
//
// A Session owns the ProbeOracle / Billboard / FaultInjector plumbing
// that the lower-level API makes the caller wire by hand, plus the
// observability sinks: `.metrics_sink(path)` writes the final
// MetricsRegistry snapshot as JSON after each run, `.trace_sink(path)`
// streams the run's span/event JSONL.
//
// Configuration is builder-style and must happen before the first
// run*() call (the oracle and sinks are built lazily at that point);
// later configuration calls throw. One Session = one oracle = one
// probe ledger, so consecutive runs share probe history exactly like
// consecutive phases of one deployment would.
//
// tmwia-lint: allow-file(matrix-read-in-strategy) harness side: Session
// holds the hidden truth only to construct the ProbeOracle; no
// estimate is computed from it.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "tmwia/billboard/billboard.hpp"
#include "tmwia/billboard/probe_oracle.hpp"
#include "tmwia/bits/kernels.hpp"
#include "tmwia/core/find_preferences.hpp"
#include "tmwia/core/params.hpp"
#include "tmwia/faults/fault_injector.hpp"
#include "tmwia/obs/flight_recorder.hpp"
#include "tmwia/obs/trace.hpp"

namespace tmwia {

/// Evaluator for FlightRecorder::phase_summary closing over the hidden
/// truth: max/mean Hamming distance of the phase outputs to the planted
/// rows. Harness-side only — the algorithms never see the matrix, only
/// this opaque std::function. `truth` must outlive the recorder.
obs::FlightRecorder::OutputEvaluator make_truth_evaluator(
    const matrix::PreferenceMatrix& truth);

class Session {
 public:
  explicit Session(const matrix::PreferenceMatrix& truth);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Assumed community fraction (default 0.5).
  Session& alpha(double a);
  /// Algorithm parameters (default core::Params::practical()).
  Session& params(const core::Params& p);
  /// Master seed; every run r draws from split(seed, r) (default 1).
  Session& seed(std::uint64_t s);
  /// Probe-noise model (default noiseless).
  Session& noise(billboard::NoiseModel n);
  /// Distance-kernel backend (default: leave the process-global choice
  /// alone — kAuto unless TMWIA_KERNEL or earlier code overrode it).
  /// Applied at build() via bits::kernels::set_backend; throws there if
  /// this CPU cannot run the requested backend, or (std::logic_error)
  /// if engine threads are mid-parallel-phase — selection must stay
  /// serial setup. Every backend computes identical results — this
  /// knob trades speed, never output.
  Session& kernel(bits::KernelBackend b);
  /// Fault plan, as a spec string (see faults::FaultPlan::parse) ...
  Session& faults(std::string_view spec);
  /// ... or pre-built.
  Session& faults(const faults::FaultPlan& plan);
  /// Requested global thread-pool size (0 = hardware concurrency).
  /// Forwarded to engine::set_global_threads, so it only sticks if no
  /// parallel phase has run yet anywhere in the process.
  Session& threads(std::size_t n);
  /// After every run, write the metrics snapshot (JSON) here. Enables
  /// the global MetricsRegistry.
  Session& metrics_sink(std::string path);
  /// Stream trace JSONL (deterministic logical clock) here.
  Session& trace_sink(std::string path);
  /// Stream the flight-recorder event log here (see
  /// obs::FlightRecorder). The session installs a truth-closing output
  /// evaluator, so phase_summary records carry max/mean discrepancy.
  Session& record_sink(std::string path,
                       obs::RecordFormat format = obs::RecordFormat::kJsonl);

  /// Theorem 1.1: known alpha, unknown D.
  core::RunReport run();
  /// Fig. 1: known alpha and D.
  core::RunReport run(std::size_t D);
  /// Section 6 anytime algorithm under a per-player round budget.
  core::RunReport run_anytime(std::uint64_t round_budget);

  /// The underlying pieces, for inspection after a run (building the
  /// session on first access if needed).
  billboard::ProbeOracle& oracle();
  billboard::Billboard& board();
  [[nodiscard]] const faults::FaultInjector* fault_injector() const;

 private:
  void build();                    // construct oracle/injector/sinks once
  void require_unbuilt(const char* setter) const;
  core::RunReport finish(core::RunReport report);

  const matrix::PreferenceMatrix* truth_;
  double alpha_ = 0.5;
  core::Params params_;
  std::uint64_t seed_ = 1;
  billboard::NoiseModel noise_;
  std::optional<bits::KernelBackend> kernel_;
  std::optional<faults::FaultPlan> fault_plan_;
  std::string metrics_path_;
  std::string trace_path_;
  std::string record_path_;
  obs::RecordFormat record_format_ = obs::RecordFormat::kJsonl;

  bool built_ = false;
  std::uint64_t run_index_ = 0;
  std::unique_ptr<billboard::ProbeOracle> oracle_;
  std::unique_ptr<billboard::Billboard> board_;
  std::unique_ptr<faults::FaultInjector> injector_;
  struct TraceSink;
  std::unique_ptr<TraceSink> trace_;
  struct RecordSink;
  std::unique_ptr<RecordSink> record_;
};

}  // namespace tmwia
