// Algorithm Large Radius (Fig. 5): the general case D >> log n.
//
// Step 1 chops the objects into L = Theta(D / log n) groups and assigns
// each player to enough random groups that every group has
// Omega(log n / alpha) players (Lemma 5.5). Step 2 runs Small Radius
// inside each group with per-group distance budget
// lambda = min(D, O(log n)). Step 3 runs the probe-free Coalesce on
// each group's published outputs, leaving at most O(1/alpha) candidate
// vectors per group with a *unique* candidate closest to all typical
// players (Theorem 5.3). Step 4 reruns Zero Radius where the l-th
// "virtual object" is the whole group O_l and its value is the index of
// the candidate a player selects — typical players select the same
// index, i.e. the virtual instance has diameter zero.
//
// Theorem 5.4: every typical player outputs within O(D/alpha) of its
// truth, spending O(log^{7/2} n / alpha^2) probes (m = Theta(n)).
#pragma once

#include <cstdint>
#include <vector>

#include "tmwia/billboard/billboard.hpp"
#include "tmwia/billboard/probe_oracle.hpp"
#include "tmwia/bits/bitvector.hpp"
#include "tmwia/core/params.hpp"
#include "tmwia/rng/rng.hpp"

namespace tmwia::core {

using matrix::PlayerId;

struct LargeRadiusResult {
  /// Output per player, aligned with `players` / the `objects`
  /// coordinate order; Coalesce's ? entries are materialized as 0
  /// ("which may be set to 0", Section 5).
  std::vector<bits::BitVector> outputs;
  std::size_t parts = 0;            ///< L, the object groups
  std::size_t lambda = 0;           ///< per-group distance budget
  std::size_t max_candidates = 0;   ///< max |B_l| over groups
  std::size_t player_copies = 0;    ///< groups each player joined
};

/// Run Large Radius for `players` over `objects` with known community
/// fraction `alpha` and diameter bound `D`.
LargeRadiusResult large_radius(billboard::ProbeOracle& oracle, billboard::Billboard* board,
                               const std::vector<PlayerId>& players,
                               const std::vector<std::uint32_t>& objects, double alpha,
                               std::size_t D, const Params& params, rng::Rng rng);

}  // namespace tmwia::core
