// Section 6: "Given a bound on the running time of the algorithm, we
// can compute the smallest possible alpha and run the algorithm with
// it." This is the cost model that computation needs: a closed-form
// upper estimate of the per-player rounds each branch of the
// implementation spends at a given alpha, assembled exactly the way the
// unknown-D driver assembles its guesses. It deliberately over-counts
// (every min(...) uses the worse side's constants) so that running with
// the returned alpha stays within the budget.
#pragma once

#include <cstdint>
#include <optional>

#include "tmwia/core/params.hpp"

namespace tmwia::core {

/// Estimated per-player probing rounds of one Zero Radius run.
double estimated_zero_radius_rounds(double alpha, std::size_t n, std::size_t m,
                                    const Params& params);

/// Estimated per-player probing rounds of one Small Radius run with
/// distance bound D.
double estimated_small_radius_rounds(double alpha, std::size_t D, std::size_t n,
                                     std::size_t m, const Params& params);

/// Estimated per-player probing rounds of one Large Radius run with
/// diameter bound D.
double estimated_large_radius_rounds(double alpha, std::size_t D, std::size_t n,
                                     std::size_t m, const Params& params);

/// Estimated per-player rounds of the full unknown-D driver (all
/// guesses D = 0, 1, 2, ... plus the RSelect pick).
double estimated_unknown_d_rounds(double alpha, std::size_t n, std::size_t m,
                                  const Params& params);

/// The smallest alpha = 2^-j (j >= 0, alpha*n >= 1) whose estimated
/// unknown-D cost fits in `round_budget`; nullopt when even alpha = 1
/// does not fit. Smaller alpha serves smaller communities, so this is
/// the most inclusive run the budget affords (Section 6).
std::optional<double> smallest_alpha_for_budget(std::uint64_t round_budget, std::size_t n,
                                                std::size_t m, const Params& params);

}  // namespace tmwia::core
