// Algorithm RSelect (Fig. 7): Choose Closest *without* a distance
// bound, by randomized pairwise tournaments.
//
// For every pair of distinct candidates, probe c·log n random
// coordinates where they (both-known) differ; a candidate losing a 2/3
// majority on the sample is declared a loser. Output a vector with no
// losses. Theorem 6.1: O(|V|^2 log n) probes, and the output is within
// O(D) of the truly closest candidate w.h.p.
//
// Used by the unknown-D driver (Section 6) to pick among the O(log n)
// candidate outputs produced with guessed distance bounds.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "tmwia/bits/trivector.hpp"
#include "tmwia/core/params.hpp"
#include "tmwia/core/select.hpp"
#include "tmwia/rng/rng.hpp"

namespace tmwia::core {

struct RSelectResult {
  std::size_t index = 0;   ///< chosen candidate
  std::size_t probes = 0;  ///< Probe invocations
  /// Losses per candidate (diagnostics; the winner has the minimum,
  /// normally 0).
  std::vector<std::size_t> losses;
};

/// Run RSelect on `candidates`. `n` is the system size used for the
/// c·log n sample budget (Params::rs_c, rs_majority). `rng` supplies
/// the player's private coin flips.
RSelectResult rselect_closest(const std::vector<bits::TriVector>& candidates, std::size_t n,
                              const ProbeFn& probe, rng::Rng& rng,
                              const Params& params = Params{});

/// Convenience overload for fully-known candidates.
RSelectResult rselect_closest(const std::vector<bits::BitVector>& candidates, std::size_t n,
                              const ProbeFn& probe, rng::Rng& rng,
                              const Params& params = Params{});

}  // namespace tmwia::core
