// Crash-consistent checkpoint/resume for the algorithm tower.
//
// A RunCheckpoint freezes everything a killed unknown-D run needs to
// continue byte-identically: the tower cursor (next guess, candidate
// versions, the partial report), the root RNG state (splits are pure in
// (state, structural tags), so restoring the root replays the remaining
// splits exactly), the oracle cost ledgers and probe records, the
// billboard posts, the fault-injector cursors, the metrics snapshot,
// and the flight-recorder logical clock. Snapshots are cut only at
// guess boundaries — serial points with no staged writers in flight —
// and written through io::Checkpoint's atomic tmp+fsync+rename path, so
// a SIGKILL at any byte leaves either the previous snapshot or the new
// one, never a torn file.
//
// The splice contract (verified by tools/run_tests.sh --kill-resume):
// the recorder emits note("ckpt", seq, cum_rounds) *before* the sink
// writes the file, and the checkpoint stores the clock just after that
// note. A resumed run therefore continues the event timeline exactly
// where the note left it: <uninterrupted log> ==
// <killed-run log prefix through the matching note> + <resumed log>.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "tmwia/billboard/billboard.hpp"
#include "tmwia/billboard/probe_oracle.hpp"
#include "tmwia/core/find_preferences.hpp"
#include "tmwia/core/params.hpp"
#include "tmwia/faults/fault_injector.hpp"
#include "tmwia/io/checkpoint.hpp"
#include "tmwia/obs/metrics.hpp"
#include "tmwia/rng/rng.hpp"

namespace tmwia::core {

/// Full run state at one guess boundary of find_preferences_unknown_d.
struct RunCheckpoint {
  // Identity — validated on resume so a checkpoint can't be replayed
  // against the wrong world.
  std::string algo = "unknown_d";
  double alpha = 0.5;
  std::uint64_t players = 0;
  std::uint64_t objects = 0;

  // Cut position.
  std::uint64_t seq = 0;             ///< checkpoint sequence number (1-based)
  std::uint64_t cum_rounds = 0;      ///< rounds consumed at the cut
  std::uint64_t recorder_clock = 0;  ///< logical clock just after the ckpt note

  // Tower cursor.
  std::size_t next_guess = 0;  ///< index into guesses of the next run
  std::vector<std::vector<bits::BitVector>> versions;  ///< outputs per finished guess
  RunReport partial;           ///< guesses + timeline accumulated so far
  std::vector<std::uint64_t> before;  ///< oracle snapshot at run entry
  std::uint64_t probes_before = 0;
  std::array<std::uint64_t, 4> rng_state{};  ///< root stream (splits are pure)

  // World state.
  billboard::ProbeOracle::Ledger oracle;
  std::vector<billboard::Billboard::ChannelDump> board;
  bool has_injector = false;
  faults::FaultInjector::State injector;
  bool metrics_enabled = false;
  obs::Snapshot metrics;

  /// Free-form harness metadata (the CLI stores the fault spec, params
  /// profile, instance path... — whatever it needs to rebuild the world
  /// before calling resume). Sorted by key when serialized.
  std::vector<std::pair<std::string, std::string>> harness;

  /// Harness value lookup; empty string when absent.
  [[nodiscard]] std::string harness_value(const std::string& key) const;
};

/// Cadence + sink for cutting checkpoints during a run. With
/// every_rounds == 0 the run never checkpoints (and never emits ckpt
/// notes); a reference run that should *compare* against a checkpointed
/// one must use the same cadence (so the notes line up) — give it a
/// null sink if it shouldn't write files.
struct CheckpointPolicy {
  std::uint64_t every_rounds = 0;
  std::function<void(const RunCheckpoint&)> sink;
};

// ---------------------------------------------------------------------------
// Serialization (io::Checkpoint container; all wire helpers throw
// io::CheckpointError on corrupt input)
// ---------------------------------------------------------------------------

void write_run_report(io::BinWriter& w, const RunReport& report);
RunReport read_run_report(io::BinReader& r);

void write_snapshot(io::BinWriter& w, const obs::Snapshot& snap);
obs::Snapshot read_snapshot(io::BinReader& r);

/// Encode/decode the full checkpoint through the sectioned container.
std::string encode_run_checkpoint(const RunCheckpoint& ckpt);
RunCheckpoint decode_run_checkpoint(std::string_view bytes);

/// Atomic write / validated load of the container file.
void save_run_checkpoint(const std::string& path, const RunCheckpoint& ckpt);
RunCheckpoint load_run_checkpoint(const std::string& path);

// ---------------------------------------------------------------------------
// Checkpoint-aware tower execution
// ---------------------------------------------------------------------------

/// find_preferences_unknown_d with a checkpoint cadence: cuts a
/// RunCheckpoint at every guess boundary where at least
/// `policy.every_rounds` rounds accrued since the last cut. Identical
/// results/logs to the plain overload apart from the ckpt note records.
RunReport find_preferences_unknown_d(billboard::ProbeOracle& oracle,
                                     billboard::Billboard* board, double alpha,
                                     const Params& params, rng::Rng rng,
                                     const CheckpointPolicy& policy);

/// Continue a checkpointed unknown-D run to completion. Restores the
/// world state into the caller's freshly-constructed oracle/board/
/// injector (shapes validated), splices the global metrics registry and
/// the installed flight recorder's clock, then resumes at
/// ckpt.next_guess. The returned report is byte-identical (to_json) to
/// the uninterrupted run's. Throws std::invalid_argument on a
/// shape/algo mismatch.
RunReport resume_unknown_d(billboard::ProbeOracle& oracle, billboard::Billboard* board,
                           const Params& params, const RunCheckpoint& ckpt,
                           const CheckpointPolicy& policy);

}  // namespace tmwia::core
