// Algorithm Coalesce (Fig. 6): probe-free clustering of the per-group
// outputs in Large Radius step 3.
//
//   Input: a multiset V of n binary vectors, a distance parameter D and
//   a frequency parameter alpha (as a minimum ball population count).
//   Output: at most 1/alpha vectors over {0,1,?}.
//
// Theorem 5.3 guarantees: if some VT subset of V of size >= alpha*n has
// pairwise distance <= D, then the output contains exactly one vector
// v* that is closest to every member of VT, with dtilde(v*, v) <= 2D
// and at most 5D/alpha ?-entries.
//
// The algorithm is deterministic and involves no probing, so all
// players compute identical outputs from the billboard contents.
#pragma once

#include <cstddef>
#include <vector>

#include "tmwia/bits/bitvector.hpp"
#include "tmwia/bits/trivector.hpp"
#include "tmwia/core/params.hpp"

namespace tmwia::core {

struct CoalesceResult {
  /// The candidate set B (at most ceil(1/alpha-ish) vectors, sorted
  /// lexicographically for determinism).
  std::vector<bits::TriVector> candidates;
  /// Size of the pre-merge representative set A (diagnostics).
  std::size_t pre_merge_count = 0;
};

/// Run Coalesce on the multiset `vectors` with distance parameter `D`.
/// `min_ball` is the population threshold alpha*n of step 2a (callers
/// translate their frequency parameter to an absolute count). The merge
/// loop of step 4 joins candidates with dtilde <= merge_mult * D
/// (paper: 5).
CoalesceResult coalesce(const std::vector<bits::BitVector>& vectors, std::size_t D,
                        std::size_t min_ball, double merge_mult = 5.0);

}  // namespace tmwia::core
