// Algorithm Small Radius (Fig. 4): reconstruction for communities of
// small diameter D (the main algorithm invokes it with D = O(log n)).
//
// K independent iterations; each partitions the objects into
// s = Theta(D^{3/2}) random parts and runs Zero Radius on every part.
// Lemma 4.1 shows that with constant probability *every* part
// simultaneously has >= alpha*n/5 players agreeing exactly on it, so
// some iteration succeeds w.h.p. Step 1c stitches each player's closest
// popular vector per part (Select with bound D); step 2 picks the best
// of the K stitched vectors (Select with bound 5D).
//
// Theorem 4.4: outputs within 5D of the truth for every typical player,
// in O(K * D^{3/2} (D + log n) / alpha) probing rounds.
#pragma once

#include <cstdint>
#include <vector>

#include "tmwia/billboard/billboard.hpp"
#include "tmwia/billboard/probe_oracle.hpp"
#include "tmwia/bits/bitvector.hpp"
#include "tmwia/core/params.hpp"
#include "tmwia/rng/rng.hpp"

namespace tmwia::core {

using matrix::PlayerId;

struct SmallRadiusResult {
  /// Output vector per player, aligned with the `players` argument and
  /// the `objects` argument's coordinate order.
  std::vector<bits::BitVector> outputs;
  /// Object parts used in the last iteration (diagnostics).
  std::size_t parts = 0;
  /// Iterations executed (the effective K).
  std::size_t iterations = 0;
};

/// Run Small Radius for `players` over `objects` with community
/// fraction `alpha` and distance bound `D`. `n_total` feeds the
/// log-driven constants (K and the Zero Radius leaf threshold); pass
/// players.size() when running standalone.
SmallRadiusResult small_radius(billboard::ProbeOracle& oracle, billboard::Billboard* board,
                               const std::vector<PlayerId>& players,
                               const std::vector<std::uint32_t>& objects, double alpha,
                               std::size_t D, const Params& params, rng::Rng rng,
                               std::size_t n_total);

/// Number of object parts s for a given D (Lemma 4.1 scaling).
std::size_t small_radius_parts(std::size_t D, const Params& params);

}  // namespace tmwia::core
