// The paper's "without loss of generality m = Theta(n)" reduction
// (Section 3): "if m < n we can add dummy objects, and when m > n we
// can let each real player simulate ceil(m/n) players of the
// algorithm" — losing a factor m/n in the rounds for n < m
// (Theorem 5.4's caveat).
//
// normalize() materializes the reduction: an expanded square-ish
// instance whose extra rows are copies owned by real players and whose
// extra columns are dummy objects everyone grades 0. After running any
// algorithm on the expanded oracle, denormalize_outputs() projects the
// results back, and real_rounds() converts the expanded round count
// (each real player executes its virtual players' probes sequentially
// within a round).
//
// tmwia-lint: allow-file(matrix-read-in-strategy) harness side: the
// m = Theta(n) reduction rewrites the hidden instance before any
// oracle exists; it is not player/strategy code.
#pragma once

#include <cstdint>
#include <vector>

#include "tmwia/bits/bitvector.hpp"
#include "tmwia/matrix/preference_matrix.hpp"

namespace tmwia::core {

struct Normalized {
  /// The expanded matrix with players() == objects().
  matrix::PreferenceMatrix expanded;
  /// expanded row i belongs to real player owner[i].
  std::vector<matrix::PlayerId> owner;
  /// Virtual players simulated per real player (m > n case; 1 otherwise).
  std::size_t virtual_per_real = 1;
  /// Original shape.
  std::size_t real_players = 0;
  std::size_t real_objects = 0;

  /// Rounds a real player needs to execute `expanded_rounds` lockstep
  /// rounds of the expanded instance: its virtual players take turns.
  [[nodiscard]] std::uint64_t real_rounds(std::uint64_t expanded_rounds) const {
    return expanded_rounds * virtual_per_real;
  }
};

/// Build the m = n reduction of `truth` (side length max(n_ceil, m)
/// where n_ceil = n rounded up to cover m with equal-size shares).
Normalized normalize(const matrix::PreferenceMatrix& truth);

/// Project expanded outputs back to the real instance: real player p
/// takes the output of its first virtual row, restricted to the real
/// objects.
std::vector<bits::BitVector> denormalize_outputs(const Normalized& norm,
                                                 const std::vector<bits::BitVector>& expanded);

}  // namespace tmwia::core
