#include "tmwia/core/rselect.hpp"

#include <cmath>
#include <span>
#include <stdexcept>

#include "tmwia/bits/kernels.hpp"
#include "tmwia/obs/metrics.hpp"
#include "tmwia/obs/profile.hpp"
#include "tmwia/rng/partition.hpp"

namespace tmwia::core {
namespace {

// RSelect runs inside parallel player code, so it reports through
// sharded counters only (summation commutes; see obs/metrics.hpp).
struct RSelectMetrics {
  obs::MetricsRegistry::Counter calls =
      obs::MetricsRegistry::global().counter("core.rselect.calls");
  obs::MetricsRegistry::Counter probes =
      obs::MetricsRegistry::global().counter("core.rselect.probes");
  obs::MetricsRegistry::Histogram candidates = obs::MetricsRegistry::global().histogram(
      "core.rselect.candidates", obs::MetricsRegistry::pow2_bounds(20));
};

const RSelectMetrics& rselect_metrics() {
  static const RSelectMetrics m;
  return m;
}

}  // namespace

RSelectResult rselect_closest(const std::vector<bits::TriVector>& candidates, std::size_t n,
                              const ProbeFn& probe, rng::Rng& rng, const Params& params) {
  if (candidates.empty()) {
    throw std::invalid_argument("rselect_closest: empty candidate set");
  }
  const std::size_t k = candidates.size();
  const auto& metrics = rselect_metrics();
  metrics.calls.inc();
  metrics.candidates.observe(k);
  RSelectResult res;
  res.losses.assign(k, 0);
  if (k == 1) return res;

  const auto budget = static_cast<std::size_t>(
      std::ceil(params.rs_c * std::log2(static_cast<double>(std::max<std::size_t>(n, 2)))));

  // Per-pair scratch. RSelect runs inside parallel player code, one
  // call at a time per worker thread, and probe callbacks never
  // re-enter rselect_closest — so thread_local buffers are safe and
  // keep the O(k^2) pair loop allocation-free.
  static thread_local std::vector<std::uint32_t> diff_coords;
  static thread_local std::vector<std::uint32_t> picked;

  for (std::size_t a = 0; a < k; ++a) {
    for (std::size_t b = a + 1; b < k; ++b) {
      // X = coordinates where both candidates are known and differ,
      // enumerated word-parallel ((va ^ vb) & ka & kb, then bit
      // extraction — ascending order, same as the per-coordinate scan
      // it replaces).
      bits::kernels::known_diff_positions(candidates[a], candidates[b], diff_coords);
      if (diff_coords.empty()) continue;

      std::span<const std::uint32_t> sample = diff_coords;
      if (diff_coords.size() > budget) {
        const auto idx = rng::sample_without_replacement(diff_coords.size(), budget, rng);
        picked.clear();
        for (std::uint32_t i : idx) picked.push_back(diff_coords[i]);
        sample = picked;
      }

      std::size_t agree_a = 0;
      // tmwia-lint: allow(per-bit-loop) RSelect probes each sampled coordinate individually by protocol
      for (std::uint32_t j : sample) {
        const bool bit = probe(j);
        ++res.probes;
        // On X, candidate a and b disagree and both are known, so the
        // bit agrees with exactly one of them.
        if (candidates[a].value_plane().get(j) == bit) ++agree_a;
      }
      const double frac_a =
          static_cast<double>(agree_a) / static_cast<double>(sample.size());
      if (frac_a >= params.rs_majority) {
        ++res.losses[b];
      } else if (1.0 - frac_a >= params.rs_majority) {
        ++res.losses[a];
      }
    }
  }

  // Output any vector with 0 losses; deterministically, the
  // lexicographically-first among those with the fewest losses (the
  // fallback also covers the low-probability event that every candidate
  // lost at least once).
  std::size_t best = 0;
  for (std::size_t i = 1; i < k; ++i) {
    if (res.losses[i] < res.losses[best] ||
        (res.losses[i] == res.losses[best] &&
         candidates[i].lex_compare(candidates[best]) < 0)) {
      best = i;
    }
  }
  res.index = best;
  metrics.probes.add(res.probes);
  obs::profile_cost(obs::Cost::kProbes, res.probes);
  return res;
}

RSelectResult rselect_closest(const std::vector<bits::BitVector>& candidates, std::size_t n,
                              const ProbeFn& probe, rng::Rng& rng, const Params& params) {
  std::vector<bits::TriVector> tri;
  tri.reserve(candidates.size());
  for (const auto& c : candidates) tri.push_back(bits::TriVector::from_bits(c));
  return rselect_closest(tri, n, probe, rng, params);
}

}  // namespace tmwia::core
