// tmwia-lint: allow-file(matrix-read-in-strategy) harness side: see normalize.hpp.
#include "tmwia/core/normalize.hpp"

#include <stdexcept>

namespace tmwia::core {

Normalized normalize(const matrix::PreferenceMatrix& truth) {
  const std::size_t n = truth.players();
  const std::size_t m = truth.objects();
  if (n == 0 || m == 0) {
    throw std::invalid_argument("normalize: empty matrix");
  }

  Normalized norm;
  norm.real_players = n;
  norm.real_objects = m;
  norm.virtual_per_real = (std::max(m, n) + n - 1) / n;  // ceil(max(m,n)/n)

  const std::size_t side = std::max(m, n * norm.virtual_per_real);
  // side >= m (dummy objects pad the columns) and side >= n*vpr (every
  // real player contributes the same number of virtual rows).
  const std::size_t rows = n * norm.virtual_per_real;

  norm.expanded = matrix::PreferenceMatrix(std::max(rows, side), side);
  norm.owner.resize(norm.expanded.players());

  for (std::size_t r = 0; r < norm.expanded.players(); ++r) {
    const auto real = static_cast<matrix::PlayerId>(r % n);
    norm.owner[r] = real;
    auto& row = norm.expanded.row(static_cast<matrix::PlayerId>(r));
    // Copy the real grades; dummy objects stay 0 (everyone agrees on
    // them, so they cannot perturb any community's diameter).
    for (matrix::ObjectId o = 0; o < m; ++o) {
      if (truth.value(real, o)) row.set(o, true);
    }
  }
  return norm;
}

std::vector<bits::BitVector> denormalize_outputs(
    const Normalized& norm, const std::vector<bits::BitVector>& expanded) {
  if (expanded.size() != norm.expanded.players()) {
    throw std::invalid_argument("denormalize_outputs: shape mismatch");
  }
  std::vector<bits::BitVector> out(norm.real_players,
                                   bits::BitVector(norm.real_objects));
  std::vector<bool> filled(norm.real_players, false);
  for (std::size_t r = 0; r < expanded.size(); ++r) {
    const auto real = norm.owner[r];
    if (filled[real]) continue;
    filled[real] = true;
    for (matrix::ObjectId o = 0; o < norm.real_objects; ++o) {
      out[real].set(o, expanded[r].get(o));
    }
  }
  return out;
}

}  // namespace tmwia::core
