#include "tmwia/core/find_preferences.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "tmwia/core/bit_space.hpp"
#include "tmwia/core/checkpoint.hpp"
#include "tmwia/core/large_radius.hpp"
#include "tmwia/core/rselect.hpp"
#include "tmwia/core/small_radius.hpp"
#include "tmwia/engine/thread_pool.hpp"
#include "tmwia/obs/flight_recorder.hpp"
#include "tmwia/obs/profile.hpp"
#include "tmwia/obs/trace.hpp"

namespace tmwia::core {
namespace {

std::vector<PlayerId> all_players(const billboard::ProbeOracle& oracle) {
  std::vector<PlayerId> p(oracle.players());
  std::iota(p.begin(), p.end(), 0u);
  return p;
}

std::vector<std::uint32_t> all_objects(const billboard::ProbeOracle& oracle) {
  std::vector<std::uint32_t> o(oracle.objects());
  std::iota(o.begin(), o.end(), 0u);
  return o;
}

const char* branch_name(Branch b) {
  switch (b) {
    case Branch::kZeroRadius: return "zero";
    case Branch::kSmallRadius: return "small";
    case Branch::kLargeRadius: return "large";
  }
  return "?";
}

/// Export the oracle ledgers as gauges and attach a registry snapshot.
/// Called at the serial tail of every top-level entry point, so gauge
/// values (and hence snapshots) do not depend on thread interleaving.
void finalize_report(RunReport& res, const billboard::ProbeOracle& oracle) {
  auto& prof = obs::Profiler::global();
  if (prof.enabled()) res.profile_json = prof.report().to_json(prof.wall_sampling());
  auto& reg = obs::MetricsRegistry::global();
  if (!reg.enabled()) return;
  reg.set_gauge("oracle.total_invocations",
                static_cast<std::int64_t>(oracle.total_invocations()));
  reg.set_gauge("oracle.total_charged", static_cast<std::int64_t>(oracle.total_charged()));
  reg.set_gauge("oracle.max_invocations",
                static_cast<std::int64_t>(oracle.max_invocations()));
  res.metrics = reg.snapshot();
}

/// Append a timeline checkpoint to the report and, when a recorder is
/// installed, emit the matching phase_summary record (whose evaluator
/// — if the harness set one — supplies the discrepancy fields).
void record_checkpoint(RunReport& res, obs::FlightRecorder* rec, std::string_view label,
                       const std::vector<bits::BitVector>& outputs, std::uint64_t cum_rounds,
                       std::uint64_t cum_probes) {
  PhaseCheckpoint cp;
  cp.label = std::string(label);
  cp.rounds = cum_rounds;
  cp.total_probes = cum_probes;
  if (rec != nullptr) {
    const auto eval = rec->phase_summary(label, outputs, cum_rounds, cum_probes);
    cp.max_disc = eval.max_disc;
    cp.mean_disc = eval.mean_disc;
  }
  res.timeline.push_back(std::move(cp));
}

}  // namespace

void rescue_orphans(billboard::ProbeOracle& oracle, std::vector<bits::BitVector>& outputs,
                    const std::vector<PlayerId>& players, const Params& params,
                    const rng::Rng& rng) {
  auto* injector = oracle.fault_injector();
  if (injector == nullptr) return;

  std::vector<std::size_t> orphans;
  std::vector<bits::BitVector> surviving;
  for (std::size_t i = 0; i < players.size(); ++i) {
    const PlayerId p = players[i];
    if (injector->is_failed(p)) continue;
    if (injector->is_orphaned(p)) {
      orphans.push_back(i);
    } else {
      surviving.push_back(outputs[i]);
    }
  }
  if (orphans.empty() || surviving.empty()) return;

  static const auto c_rescued =
      obs::MetricsRegistry::global().counter("core.orphans_rescued");
  c_rescued.add(orphans.size());

  // Candidate pool: the most-supported surviving outputs (ties broken
  // lexicographically), capped like node-level orphan adoption.
  auto voted = billboard::tally(surviving, 1);
  std::sort(voted.begin(), voted.end(), [](const auto& a, const auto& b) {
    if (a.votes != b.votes) return a.votes > b.votes;
    return a.vec.lex_compare(b.vec) < 0;
  });
  if (voted.size() > params.ft_orphan_candidates) voted.resize(params.ft_orphan_candidates);
  std::vector<bits::BitVector> candidates;
  candidates.reserve(voted.size() + 1);
  for (auto& vv : voted) candidates.push_back(std::move(vv.vec));

  engine::parallel_for(0, orphans.size(), [&](std::size_t k) {
    const std::size_t i = orphans[k];
    const PlayerId p = players[i];
    // The player's own (possibly partial) output competes too, so the
    // rescue can only help.
    std::vector<bits::BitVector> cands = candidates;
    cands.push_back(outputs[i]);
    rng::Rng prng = rng.split(0x0FA9, p);
    const auto sel = rselect_closest(
        cands, players.size(),
        [&](std::uint32_t j) { return oracle.probe_resilient(p, j); }, prng, params);
    outputs[i] = std::move(cands[sel.index]);
  });
}

RunReport find_preferences(billboard::ProbeOracle& oracle, billboard::Billboard* board,
                           double alpha, std::size_t D, const Params& params, rng::Rng rng) {
  const auto players = all_players(oracle);
  const auto objects = all_objects(oracle);
  const auto before = oracle.snapshot();
  const auto probes_before = oracle.total_invocations();

  obs::Span span(obs::tracer(), "find_preferences", {{"alpha", alpha}, {"D", D}});

  RunReport res;
  res.algo = RunReport::Algo::kFixedD;
  const double log_n = std::log2(static_cast<double>(std::max<std::size_t>(players.size(), 4)));
  const auto small_cutoff =
      static_cast<std::size_t>(std::ceil(params.lr_lambda_mult * log_n));

  static const auto c_zero = obs::MetricsRegistry::global().counter("core.fp.branch.zero");
  static const auto c_small = obs::MetricsRegistry::global().counter("core.fp.branch.small");
  static const auto c_large = obs::MetricsRegistry::global().counter("core.fp.branch.large");

  res.branch = D == 0              ? Branch::kZeroRadius
               : D <= small_cutoff ? Branch::kSmallRadius
                                   : Branch::kLargeRadius;
  const std::string phase_label = std::string("fp:") + branch_name(res.branch);
  auto* rec = obs::recorder();
  if (rec != nullptr) rec->run_begin(phase_label, alpha, players.size(), objects.size(), D);

  {
    obs::ProfileZone branch_zone(phase_label);
    switch (res.branch) {
      case Branch::kZeroRadius:
        c_zero.inc();
        res.outputs = zero_radius_bits(oracle, board, players, objects, alpha, params,
                                       rng.split(0x2e20), "main/zr");
        break;
      case Branch::kSmallRadius:
        c_small.inc();
        res.outputs = small_radius(oracle, board, players, objects, alpha, D, params,
                                   rng.split(0x57a11), players.size())
                          .outputs;
        break;
      case Branch::kLargeRadius:
        c_large.inc();
        res.outputs =
            large_radius(oracle, board, players, objects, alpha, D, params, rng.split(0x1a26e))
                .outputs;
        break;
    }

    rescue_orphans(oracle, res.outputs, players, params, rng.split(0x0E5C));
  }

  res.rounds = oracle.rounds_since(before);
  res.total_probes = oracle.total_invocations() - probes_before;
  record_checkpoint(res, rec, phase_label, res.outputs, res.rounds, res.total_probes);
  if (rec != nullptr) rec->run_end(phase_label, res.rounds, res.total_probes);
  finalize_report(res, oracle);
  span.end({{"branch", branch_name(res.branch)},
            {"rounds", res.rounds},
            {"probes", res.total_probes}});
  return res;
}

namespace {

/// Shared body of the three unknown-D entry points. `policy` (optional)
/// cuts checkpoints at guess boundaries; `resume` (optional) continues
/// from a previously-cut checkpoint instead of starting fresh. The
/// resumed execution replays the uninterrupted one byte-for-byte: the
/// root rng state was stored (splits are pure in it), the recorder
/// clock was restored by the caller, and run_begin is skipped because
/// the original run's record already carries it.
RunReport unknown_d_impl(billboard::ProbeOracle& oracle, billboard::Billboard* board,
                         double alpha, const Params& params, rng::Rng rng,
                         const CheckpointPolicy* policy, const RunCheckpoint* resume) {
  const auto players = all_players(oracle);
  const auto objects = all_objects(oracle);
  const std::size_t m = objects.size();

  obs::Span span(obs::tracer(), "find_preferences_unknown_d", {{"alpha", alpha}});
  obs::ProfileZone prof_zone("unknown_d");
  auto* rec = obs::recorder();

  RunReport res;
  std::vector<std::vector<bits::BitVector>> versions;
  std::vector<std::uint64_t> before;
  std::uint64_t probes_before = 0;
  std::size_t start_gi = 0;
  std::uint64_t ckpt_seq = 0;
  std::uint64_t last_ckpt_rounds = 0;

  if (resume != nullptr) {
    res = resume->partial;
    versions = resume->versions;
    before = resume->before;
    probes_before = resume->probes_before;
    start_gi = resume->next_guess;
    ckpt_seq = resume->seq;
    last_ckpt_rounds = resume->cum_rounds;
  } else {
    before = oracle.snapshot();
    probes_before = oracle.total_invocations();
    if (rec != nullptr) rec->run_begin("unknown_d", alpha, players.size(), objects.size());
    res.algo = RunReport::Algo::kUnknownD;
    res.guesses.push_back(0);
    for (std::size_t d = 1; d < m; d *= 2) res.guesses.push_back(d);
    versions.reserve(res.guesses.size());
  }

  static const auto h_guess_probes = obs::MetricsRegistry::global().histogram(
      "core.unknown_d.guess_probes", obs::MetricsRegistry::pow2_bounds(32));

  // Cut a checkpoint when the cadence says one is due, then give the
  // fault plan its chance to SIGKILL. Order matters: the kill drill
  // must always find a fresh file to resume from, and the ckpt note is
  // emitted *before* the sink runs so the stored recorder clock points
  // just past it (the splice point).
  const auto maybe_checkpoint = [&](std::size_t next_gi) {
    const std::uint64_t cum = oracle.rounds_since(before);
    if (policy != nullptr && policy->every_rounds > 0 &&
        cum - last_ckpt_rounds >= policy->every_rounds) {
      ++ckpt_seq;
      if (rec != nullptr) rec->note("ckpt", ckpt_seq, cum);
      if (policy->sink) {
        RunCheckpoint ck;
        ck.algo = "unknown_d";
        ck.alpha = alpha;
        ck.players = players.size();
        ck.objects = m;
        ck.seq = ckpt_seq;
        ck.cum_rounds = cum;
        ck.recorder_clock = rec != nullptr ? rec->clock() : 0;
        ck.next_guess = next_gi;
        ck.versions = versions;
        ck.partial = res;
        ck.before = before;
        ck.probes_before = probes_before;
        ck.rng_state = rng.state();
        ck.oracle = oracle.export_ledger();
        if (board != nullptr) ck.board = board->export_posts();
        if (auto* inj = oracle.fault_injector()) {
          ck.has_injector = true;
          ck.injector = inj->export_state();
        }
        auto& reg = obs::MetricsRegistry::global();
        if (reg.enabled()) {
          ck.metrics_enabled = true;
          ck.metrics = reg.snapshot();
        }
        policy->sink(ck);
      }
      last_ckpt_rounds = cum;
    }
    if (auto* inj = oracle.fault_injector()) inj->maybe_kill(cum);
  };

  // One main-algorithm run per guess. Outputs are posted publicly (via
  // the per-run channels), then each player privately picks the
  // candidate closest to its own vector with RSelect — no distance
  // bound is needed (Section 6.1).
  for (std::size_t gi = start_gi; gi < res.guesses.size(); ++gi) {
    const auto guess_probes_before = oracle.total_invocations();
    {
      // tmwia-lint: allow(metric-name-registry) guess zones are parameterized by d
      obs::ProfileZone guess_zone("guess:d=" + std::to_string(res.guesses[gi]));
      versions.push_back(
          find_preferences(oracle, board, alpha, res.guesses[gi], params, rng.split(0xD0, gi))
              .outputs);
    }
    const auto guess_probes = oracle.total_invocations() - guess_probes_before;
    h_guess_probes.observe(guess_probes);
    if (auto* t = obs::tracer()) {
      t->event("unknown_d.guess", {{"d", res.guesses[gi]},
                                   {"probes", guess_probes},
                                   {"cum_rounds", oracle.rounds_since(before)}});
    }
    record_checkpoint(res, rec, "guess:d=" + std::to_string(res.guesses[gi]), versions.back(),
                      oracle.rounds_since(before),
                      oracle.total_invocations() - probes_before);
    maybe_checkpoint(gi + 1);
  }

  res.outputs.assign(players.size(), bits::BitVector(m));
  res.chosen_d.assign(players.size(), 0);
  auto* injector = oracle.fault_injector();
  obs::ProfileZone select_zone("select");
  engine::parallel_for(0, players.size(), [&](std::size_t i) {
    const PlayerId p = players[i];
    std::vector<bits::BitVector> candidates;
    candidates.reserve(versions.size());
    for (const auto& v : versions) candidates.push_back(v[i]);
    if (injector != nullptr && injector->is_failed(p)) {
      // Degraded players cannot probe a tournament; pick the candidate
      // that agrees best with what they managed to post on the
      // billboard before failing (free billboard reads).
      const auto& mask = oracle.probed_mask(p);
      const auto& vals = oracle.posted_values(p);
      std::size_t best = 0;
      std::size_t best_dist = std::numeric_limits<std::size_t>::max();
      for (std::size_t gi = 0; gi < candidates.size(); ++gi) {
        const auto dist = ((candidates[gi] ^ vals) & mask).count_ones();
        if (dist < best_dist) {
          best = gi;
          best_dist = dist;
        }
      }
      res.outputs[i] = std::move(candidates[best]);
      res.chosen_d[i] = res.guesses[best];
      return;
    }
    rng::Rng prng = rng.split(0x9e1ec7, p);
    const auto sel = rselect_closest(
        candidates, players.size(),
        [&](std::uint32_t j) { return oracle.probe_resilient(p, objects[j]); }, prng, params);
    res.outputs[i] = std::move(candidates[sel.index]);
    res.chosen_d[i] = res.guesses[sel.index];
  });

  res.rounds = oracle.rounds_since(before);
  res.total_probes = oracle.total_invocations() - probes_before;
  record_checkpoint(res, rec, "select", res.outputs, res.rounds, res.total_probes);
  if (rec != nullptr) rec->run_end("unknown_d", res.rounds, res.total_probes);
  finalize_report(res, oracle);
  span.end({{"guesses", res.guesses.size()},
            {"rounds", res.rounds},
            {"probes", res.total_probes}});
  return res;
}

}  // namespace

RunReport find_preferences_unknown_d(billboard::ProbeOracle& oracle,
                                     billboard::Billboard* board, double alpha,
                                     const Params& params, rng::Rng rng) {
  return unknown_d_impl(oracle, board, alpha, params, rng, nullptr, nullptr);
}

RunReport find_preferences_unknown_d(billboard::ProbeOracle& oracle,
                                     billboard::Billboard* board, double alpha,
                                     const Params& params, rng::Rng rng,
                                     const CheckpointPolicy& policy) {
  return unknown_d_impl(oracle, board, alpha, params, rng, &policy, nullptr);
}

RunReport resume_unknown_d(billboard::ProbeOracle& oracle, billboard::Billboard* board,
                           const Params& params, const RunCheckpoint& ckpt,
                           const CheckpointPolicy& policy) {
  if (ckpt.algo != "unknown_d") {
    throw std::invalid_argument("resume_unknown_d: checkpoint is for algo '" + ckpt.algo +
                                "'");
  }
  if (ckpt.players != oracle.players() || ckpt.objects != oracle.objects()) {
    throw std::invalid_argument(
        "resume_unknown_d: checkpoint shape (" + std::to_string(ckpt.players) + "x" +
        std::to_string(ckpt.objects) + ") does not match oracle (" +
        std::to_string(oracle.players()) + "x" + std::to_string(oracle.objects()) + ")");
  }

  // Splice the world back together: cost ledgers and probe records,
  // billboard posts, fault cursors, the metrics stream, and the flight
  // recorder's logical clock (re-entering the still-open run scope).
  oracle.restore_ledger(ckpt.oracle);
  if (board != nullptr) board->restore_posts(ckpt.board);
  auto* injector = oracle.fault_injector();
  if (ckpt.has_injector) {
    if (injector == nullptr) {
      throw std::invalid_argument(
          "resume_unknown_d: checkpoint has fault state but no injector is attached");
    }
    injector->restore_state(ckpt.injector);
  }
  if (ckpt.metrics_enabled) {
    auto& reg = obs::MetricsRegistry::global();
    reg.set_enabled(true);
    reg.restore(ckpt.metrics);
  }
  if (auto* rec = obs::recorder()) {
    rec->resume_run(oracle.players(), ckpt.recorder_clock);
  }

  return unknown_d_impl(oracle, board, ckpt.alpha, params,
                        rng::Rng::from_state(ckpt.rng_state), &policy, &ckpt);
}

void keep_better_outputs(billboard::ProbeOracle& oracle,
                         std::vector<bits::BitVector>& current,
                         std::vector<bits::BitVector>& challenger, std::uint64_t phase,
                         const Params& params, const rng::Rng& rng) {
  auto* injector = oracle.fault_injector();
  obs::ProfileZone zone("keep_better");
  engine::parallel_for(0, current.size(), [&](std::size_t i) {
    const PlayerId p = static_cast<PlayerId>(i);
    if (injector != nullptr && injector->is_failed(p)) return;
    std::vector<bits::BitVector> candidates{current[i], challenger[i]};
    rng::Rng prng = rng.split(0xbe57, phase, p);
    const auto sel = rselect_closest(
        candidates, current.size(),
        [&](std::uint32_t j) { return oracle.probe_resilient(p, j); }, prng, params);
    if (sel.index == 1) current[i] = std::move(challenger[i]);
  });
}

RunReport anytime(billboard::ProbeOracle& oracle, billboard::Billboard* board,
                  std::uint64_t round_budget, const Params& params, rng::Rng rng) {
  const auto players = all_players(oracle);
  const auto objects = all_objects(oracle);
  const auto before = oracle.snapshot();
  const auto probes_before = oracle.total_invocations();

  obs::Span span(obs::tracer(), "anytime", {{"round_budget", round_budget}});
  obs::ProfileZone prof_zone("anytime");
  auto* rec = obs::recorder();
  if (rec != nullptr) rec->run_begin("anytime", 1.0, players.size(), objects.size());

  RunReport res;
  res.algo = RunReport::Algo::kAnytime;
  res.outputs.assign(players.size(), bits::BitVector(objects.size()));

  bool have_previous = false;
  for (std::size_t phase = 1;; ++phase) {
    const double alpha = std::pow(0.5, static_cast<double>(phase));
    if (alpha * static_cast<double>(players.size()) < 1.0) break;

    // tmwia-lint: allow(metric-name-registry) phase zones are parameterized by index
    obs::ProfileZone phase_zone("phase:" + std::to_string(phase));
    auto run = find_preferences_unknown_d(oracle, board, alpha, params, rng.split(0xA17, phase));

    if (!have_previous) {
      res.outputs = std::move(run.outputs);
      have_previous = true;
    } else {
      // Keep the better of old/new per player (RSelect with 2
      // candidates). Degraded players keep their previous output.
      keep_better_outputs(oracle, res.outputs, run.outputs, phase, params, rng);
    }

    res.phases.push_back(AnytimePhase{alpha, oracle.rounds_since(before),
                                      oracle.total_invocations() - probes_before});
    if (auto* t = obs::tracer()) {
      t->event("anytime.phase", {{"alpha", alpha},
                                 {"cum_rounds", res.phases.back().rounds},
                                 {"cum_probes", res.phases.back().total_probes}});
    }
    record_checkpoint(res, rec, "phase:" + std::to_string(phase), res.outputs,
                      res.phases.back().rounds, res.phases.back().total_probes);
    if (oracle.rounds_since(before) >= round_budget) break;
  }

  res.rounds = oracle.rounds_since(before);
  res.total_probes = oracle.total_invocations() - probes_before;
  if (rec != nullptr) rec->run_end("anytime", res.rounds, res.total_probes);
  finalize_report(res, oracle);
  span.end({{"phases", res.phases.size()},
            {"rounds", res.rounds},
            {"probes", res.total_probes}});
  return res;
}

}  // namespace tmwia::core
