// tmwia-lint: allow-file(matrix-read-in-strategy) harness side: see session.hpp.
// tmwia-lint: allow-file(sink-registration) Session is a sink owner: it installs the artifact sinks the config asks for.
#include "tmwia/core/session.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "tmwia/engine/thread_pool.hpp"
#include "tmwia/io/checkpoint.hpp"
#include "tmwia/obs/metrics.hpp"
#include "tmwia/rng/rng.hpp"

namespace tmwia {

obs::FlightRecorder::OutputEvaluator make_truth_evaluator(
    const matrix::PreferenceMatrix& truth) {
  return [&truth](const std::vector<bits::BitVector>& outputs) {
    obs::FlightRecorder::PhaseEval eval;
    const std::size_t n = std::min(outputs.size(), truth.players());
    if (n == 0) return eval;
    std::uint64_t worst = 0;
    std::uint64_t total = 0;
    for (std::size_t p = 0; p < n; ++p) {
      const auto d = static_cast<std::uint64_t>(outputs[p].hamming(truth.row(p)));
      worst = std::max(worst, d);
      total += d;
    }
    eval.max_disc = static_cast<double>(worst);
    eval.mean_disc = static_cast<double>(total) / static_cast<double>(n);
    return eval;
  };
}

/// Owns the trace output stream and the Tracer writing to it, and is
/// responsible for installing/uninstalling the process-global tracer
/// pointer (the library's trace points read obs::tracer()).
struct Session::TraceSink {
  // tmwia-lint: allow(durable-write) streaming event sink, not a one-shot artifact
  std::ofstream out;
  std::unique_ptr<obs::Tracer> tracer;

  explicit TraceSink(const std::string& path) : out(path) {
    if (!out) throw std::runtime_error("Session: cannot open trace sink '" + path + "'");
    tracer = std::make_unique<obs::Tracer>(out);
    obs::set_tracer(tracer.get());
  }
  ~TraceSink() {
    if (obs::tracer() == tracer.get()) obs::set_tracer(nullptr);
    tracer->flush();
  }
};

/// Same ownership pattern for the flight recorder: stream + recorder +
/// the process-global obs::recorder() slot, with the truth-closing
/// output evaluator installed so phase summaries carry discrepancy.
struct Session::RecordSink {
  // tmwia-lint: allow(durable-write) streaming event sink, not a one-shot artifact
  std::ofstream out;
  std::unique_ptr<obs::FlightRecorder> recorder;

  RecordSink(const std::string& path, obs::RecordFormat format,
             const matrix::PreferenceMatrix& truth)
      : out(path, format == obs::RecordFormat::kBinary
                      ? std::ios::out | std::ios::binary
                      : std::ios::out) {
    if (!out) throw std::runtime_error("Session: cannot open record sink '" + path + "'");
    recorder = std::make_unique<obs::FlightRecorder>(out, format);
    recorder->set_output_evaluator(make_truth_evaluator(truth));
    obs::set_recorder(recorder.get());
  }
  ~RecordSink() {
    if (obs::recorder() == recorder.get()) obs::set_recorder(nullptr);
    recorder->flush();
  }
};

Session::Session(const matrix::PreferenceMatrix& truth)
    : truth_(&truth), params_(core::Params::practical()) {}

Session::~Session() = default;

void Session::require_unbuilt(const char* setter) const {
  if (built_) {
    throw std::logic_error(std::string("Session::") + setter +
                           ": configuration is frozen after the first run");
  }
}

Session& Session::alpha(double a) {
  require_unbuilt("alpha");
  alpha_ = a;
  return *this;
}

Session& Session::params(const core::Params& p) {
  require_unbuilt("params");
  params_ = p;
  return *this;
}

Session& Session::seed(std::uint64_t s) {
  require_unbuilt("seed");
  seed_ = s;
  return *this;
}

Session& Session::noise(billboard::NoiseModel n) {
  require_unbuilt("noise");
  noise_ = n;
  return *this;
}

Session& Session::kernel(bits::KernelBackend b) {
  require_unbuilt("kernel");
  kernel_ = b;
  return *this;
}

Session& Session::faults(std::string_view spec) {
  return faults(faults::FaultPlan::parse(spec));
}

Session& Session::faults(const faults::FaultPlan& plan) {
  require_unbuilt("faults");
  fault_plan_ = plan;
  return *this;
}

Session& Session::threads(std::size_t n) {
  require_unbuilt("threads");
  engine::set_global_threads(n);
  return *this;
}

Session& Session::metrics_sink(std::string path) {
  require_unbuilt("metrics_sink");
  metrics_path_ = std::move(path);
  return *this;
}

Session& Session::trace_sink(std::string path) {
  require_unbuilt("trace_sink");
  trace_path_ = std::move(path);
  return *this;
}

Session& Session::record_sink(std::string path, obs::RecordFormat format) {
  require_unbuilt("record_sink");
  record_path_ = std::move(path);
  record_format_ = format;
  return *this;
}

void Session::build() {
  if (built_) return;
  built_ = true;
  // Backend selection happens here, serially, before any phase runs —
  // set_backend itself rejects (throws) if engine threads are mid
  // parallel phase, so a misplaced build() fails loudly instead of
  // racing in-flight distance calls.
  if (kernel_.has_value()) bits::kernels::set_backend(*kernel_);
  oracle_ = std::make_unique<billboard::ProbeOracle>(*truth_, noise_);
  board_ = std::make_unique<billboard::Billboard>();
  if (fault_plan_.has_value()) {
    injector_ = std::make_unique<faults::FaultInjector>(*fault_plan_, truth_->players());
    oracle_->set_fault_injector(injector_.get());
  }
  if (!metrics_path_.empty()) obs::MetricsRegistry::global().set_enabled(true);
  if (!trace_path_.empty()) trace_ = std::make_unique<TraceSink>(trace_path_);
  if (!record_path_.empty()) {
    record_ = std::make_unique<RecordSink>(record_path_, record_format_, *truth_);
  }
}

core::RunReport Session::finish(core::RunReport report) {
  if (!metrics_path_.empty()) {
    // One-shot artifact: a reader never sees a torn metrics file.
    std::ostringstream out;
    out << report.metrics.to_json() << '\n';
    io::atomic_write_file(metrics_path_, out.str());
  }
  if (trace_ != nullptr) trace_->tracer->flush();
  if (record_ != nullptr) record_->recorder->flush();
  ++run_index_;
  return report;
}

core::RunReport Session::run() {
  build();
  return finish(core::find_preferences_unknown_d(
      *oracle_, board_.get(), alpha_, params_, rng::Rng(seed_).split(0x5e55, run_index_)));
}

core::RunReport Session::run(std::size_t D) {
  build();
  return finish(core::find_preferences(*oracle_, board_.get(), alpha_, D, params_,
                                       rng::Rng(seed_).split(0x5e55, run_index_)));
}

core::RunReport Session::run_anytime(std::uint64_t round_budget) {
  build();
  return finish(core::anytime(*oracle_, board_.get(), round_budget, params_,
                              rng::Rng(seed_).split(0x5e55, run_index_)));
}

billboard::ProbeOracle& Session::oracle() {
  build();
  return *oracle_;
}

billboard::Billboard& Session::board() {
  build();
  return *board_;
}

const faults::FaultInjector* Session::fault_injector() const { return injector_.get(); }

}  // namespace tmwia
