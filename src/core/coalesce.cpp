#include "tmwia/core/coalesce.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tmwia/bits/kernels.hpp"

#include "tmwia/obs/profile.hpp"

namespace tmwia::core {

CoalesceResult coalesce(const std::vector<bits::BitVector>& vectors, std::size_t D,
                        std::size_t min_ball, double merge_mult) {
  CoalesceResult res;
  if (vectors.empty()) return res;
  if (min_ball == 0) min_ball = 1;

  // Pairwise distances never change — only ball membership does as
  // vectors are removed — so compute the whole matrix once with the
  // batched kernel (one dist_many row per vector) and run the
  // fixed-point sweeps below on integer lookups.
  const std::size_t n = vectors.size();
  std::vector<std::uint32_t> dist_matrix(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    bits::kernels::dist_many(vectors[i], vectors,
                             std::span<std::uint32_t>(dist_matrix).subspan(i * n, n));
  }
  // Logical bytes handed to the kernel layer: n rows of n vectors,
  // word-granular — backend-invariant, so safe for determinism diffs.
  obs::profile_cost(obs::Cost::kKernelBytes,
                    static_cast<std::uint64_t>(n) * n * vectors[0].words().size() * 8);
  const auto dist_at = [&](std::size_t i, std::size_t j) {
    return static_cast<std::size_t>(dist_matrix[i * n + j]);
  };

  // Work on the live multiset as index lists; balls are computed over
  // the *current* V (vectors removed in 2a/2c no longer populate
  // anyone's ball).
  std::vector<std::size_t> live(vectors.size());
  for (std::size_t i = 0; i < live.size(); ++i) live[i] = i;

  std::vector<bits::TriVector> a;  // the representative set A (step 2)

  while (!live.empty()) {
    // Step 2a: repeatedly drop vectors whose ball is under-populated.
    // (One sweep can expose new under-populated vectors, so iterate to
    // a fixed point.)
    bool changed = true;
    while (changed && !live.empty()) {
      changed = false;
      std::vector<std::size_t> kept;
      kept.reserve(live.size());
      for (std::size_t i : live) {
        std::size_t ball = 0;
        for (std::size_t j : live) {
          if (dist_at(i, j) <= D) ++ball;
        }
        if (ball >= min_ball) {
          kept.push_back(i);
        } else {
          changed = true;
        }
      }
      live.swap(kept);
    }
    if (live.empty()) break;

    // Step 2b: lexicographically first remaining vector.
    std::size_t first = live[0];
    for (std::size_t i : live) {
      if (vectors[i].lex_compare(vectors[first]) < 0) first = i;
    }

    // Step 2c: add it to A, remove its ball from V.
    a.push_back(bits::TriVector::from_bits(vectors[first]));
    std::vector<std::size_t> kept;
    kept.reserve(live.size());
    for (std::size_t j : live) {
      if (dist_at(first, j) > D) kept.push_back(j);
    }
    live.swap(kept);
  }

  res.pre_merge_count = a.size();

  // Step 4: merge near candidates (dtilde <= merge_mult * D) until no
  // two remain close; '?' marks each merged disagreement.
  const auto merge_bound =
      static_cast<std::size_t>(std::floor(merge_mult * static_cast<double>(D)));
  bool merged = true;
  while (merged) {
    merged = false;
    for (std::size_t i = 0; i < a.size() && !merged; ++i) {
      for (std::size_t j = i + 1; j < a.size() && !merged; ++j) {
        if (a[i].dtilde(a[j]) <= merge_bound) {
          bits::TriVector m = a[i].merge(a[j]);
          a.erase(a.begin() + static_cast<std::ptrdiff_t>(j));
          a.erase(a.begin() + static_cast<std::ptrdiff_t>(i));
          a.push_back(std::move(m));
          merged = true;
        }
      }
    }
  }

  std::sort(a.begin(), a.end(), [](const bits::TriVector& x, const bits::TriVector& y) {
    return x.lex_compare(y) < 0;
  });
  res.candidates = std::move(a);
  return res;
}

}  // namespace tmwia::core
