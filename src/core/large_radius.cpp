#include "tmwia/core/large_radius.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "tmwia/core/coalesce.hpp"
#include "tmwia/core/select.hpp"
#include "tmwia/core/small_radius.hpp"
#include "tmwia/core/zero_radius.hpp"
#include "tmwia/engine/thread_pool.hpp"
#include "tmwia/obs/flight_recorder.hpp"
#include "tmwia/rng/partition.hpp"

namespace tmwia::core {
namespace {

/// Step 4's object space: "object" l is the whole group O_l, its value
/// the index of the Coalesce candidate the prober selects. One virtual
/// probe = one Select run over B_l on the group's primitive objects,
/// charged through the oracle like any other probing.
class VirtualSpace {
 public:
  using Value = std::uint32_t;

  VirtualSpace(billboard::ProbeOracle& oracle,
               const std::vector<std::vector<std::uint32_t>>& group_objects,
               const std::vector<std::vector<bits::TriVector>>& candidates,
               std::size_t select_bound)
      : oracle_(&oracle),
        group_objects_(&group_objects),
        candidates_(&candidates),
        select_bound_(select_bound) {}

  Value probe(PlayerId p, std::uint32_t group) {
    const auto& cands = (*candidates_)[group];
    if (cands.empty()) return 0;
    if (cands.size() == 1) return 0;
    const auto& objs = (*group_objects_)[group];
    const auto sel = select_closest(cands, select_bound_, [&](std::uint32_t j) {
      return oracle_->probe_resilient(p, objs[j]);
    });
    return static_cast<Value>(sel.index);
  }

  // Degradation hooks (see zero_radius.hpp): the virtual instance
  // inherits the primitive oracle's fault state.
  [[nodiscard]] bool is_failed(PlayerId p) const {
    auto* inj = oracle_->fault_injector();
    return inj != nullptr && inj->is_failed(p);
  }
  void note_orphan(PlayerId p) {
    if (auto* inj = oracle_->fault_injector(); inj != nullptr) inj->note_orphan(p);
  }
  [[nodiscard]] bool faults_active() const { return oracle_->fault_injector() != nullptr; }

 private:
  billboard::ProbeOracle* oracle_;
  const std::vector<std::vector<std::uint32_t>>* group_objects_;
  const std::vector<std::vector<bits::TriVector>>* candidates_;
  std::size_t select_bound_;
};

}  // namespace

LargeRadiusResult large_radius(billboard::ProbeOracle& oracle, billboard::Billboard* board,
                               const std::vector<PlayerId>& players,
                               const std::vector<std::uint32_t>& objects, double alpha,
                               std::size_t D, const Params& params, rng::Rng rng) {
  if (players.empty()) return {};
  if (alpha <= 0.0 || alpha > 1.0) {
    throw std::invalid_argument("large_radius: alpha must be in (0, 1]");
  }

  const std::size_t n = players.size();
  const std::size_t m = objects.size();
  const double log_n = std::log2(static_cast<double>(std::max<std::size_t>(n, 4)));

  LargeRadiusResult res;

  // Per-group distance budget lambda = min(D, O(log n)).
  const auto lambda = std::min<std::size_t>(
      D, static_cast<std::size_t>(std::ceil(params.lr_lambda_mult * log_n)));
  res.lambda = lambda;

  // Step 1: L object groups; each player joins enough groups that every
  // group expects >= lr_players_mult * log n / alpha players.
  std::size_t L = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(params.lr_parts_c * static_cast<double>(D) / std::max(1.0, log_n))));
  L = std::min({L, m, n});
  res.parts = L;

  rng::Rng part_rng = rng.split(0xC0DE);
  const auto obj_partition = rng::random_partition(m, L, part_rng);

  const double target_per_part = params.lr_players_mult * log_n / alpha;
  const auto copies = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(target_per_part * static_cast<double>(L) / static_cast<double>(n))));
  res.player_copies = std::min(copies, L);

  std::vector<std::uint32_t> player_positions(n);
  for (std::size_t i = 0; i < n; ++i) player_positions[i] = static_cast<std::uint32_t>(i);
  const auto player_assignment = rng::assign_to_parts(player_positions, L, copies, part_rng);

  // Steps 2+3 per group: Small Radius with alpha/2 and budget lambda,
  // then Coalesce the group's outputs into candidates B_l.
  std::vector<std::vector<std::uint32_t>> group_objects(L);
  std::vector<std::vector<bits::TriVector>> group_candidates(L);

  const auto coalesce_D = static_cast<std::size_t>(
      std::ceil(params.lr_coalesce_mult * static_cast<double>(std::max<std::size_t>(lambda, 1))));

  for (std::size_t l = 0; l < L; ++l) {
    auto& objs = group_objects[l];
    objs.reserve(obj_partition.parts[l].size());
    for (std::uint32_t pos : obj_partition.parts[l]) objs.push_back(objects[pos]);
    if (objs.empty()) continue;

    std::vector<PlayerId> group_players;
    group_players.reserve(player_assignment.parts[l].size());
    for (std::uint32_t pos : player_assignment.parts[l]) group_players.push_back(players[pos]);
    if (group_players.empty()) continue;

    const auto sr = small_radius(oracle, board, group_players, objs, alpha / 2.0, lambda,
                                 params, rng.split(0x5a11, l), n);

    // Degradation: only survivors' outputs reach the billboard and the
    // Coalesce vote; the ball-size quorum is taken over them.
    auto* injector = oracle.fault_injector();
    std::vector<bits::BitVector> surviving;
    surviving.reserve(group_players.size());
    for (std::size_t i = 0; i < group_players.size(); ++i) {
      if (injector == nullptr || !injector->is_failed(group_players[i])) {
        surviving.push_back(sr.outputs[i]);
      }
    }

    // Publish the per-group outputs (the billboard contents Coalesce
    // reads; it is deterministic, so running it once here equals every
    // player running it locally).
    if (board != nullptr) {
      const std::string channel = "lr/group/" + std::to_string(l);
      for (std::size_t i = 0; i < group_players.size(); ++i) {
        if (injector != nullptr && injector->is_failed(group_players[i])) continue;
        board->post(channel, group_players[i], sr.outputs[i]);
      }
    }

    const auto min_ball = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(params.zr_vote_frac * alpha *
                                              static_cast<double>(surviving.size()))));
    auto co = coalesce(surviving, coalesce_D, min_ball, params.co_merge_mult);
    res.max_candidates = std::max(res.max_candidates, co.candidates.size());
    // Per-group coalesce record; serial drain point for the recorder.
    if (auto* rec = obs::recorder()) {
      rec->note("lr.group", surviving.size(), co.candidates.size());
    }
    group_candidates[l] = std::move(co.candidates);
  }

  // Step 4: Zero Radius over the L virtual objects.
  const auto select_bound = static_cast<std::size_t>(
      std::ceil(params.lr_select_mult * static_cast<double>(coalesce_D)));
  VirtualSpace vspace(oracle, group_objects, group_candidates, select_bound);

  std::vector<std::uint32_t> virtual_objects(L);
  for (std::size_t l = 0; l < L; ++l) virtual_objects[l] = static_cast<std::uint32_t>(l);

  const auto choices =
      zero_radius(vspace, players, virtual_objects, alpha, params, rng.split(0xF17A1), n);

  // Materialize: concatenate each player's chosen candidates, ? -> 0.
  res.outputs.assign(n, bits::BitVector(m));
  engine::parallel_for(0, n, [&](std::size_t i) {
    for (std::size_t l = 0; l < L; ++l) {
      const auto& cands = group_candidates[l];
      if (cands.empty()) continue;
      const std::uint32_t idx = std::min<std::uint32_t>(
          choices[i][l], static_cast<std::uint32_t>(cands.size() - 1));
      const bits::BitVector piece = cands[idx].fill_unknown(false);
      res.outputs[i].scatter(piece, obj_partition.parts[l]);
    }
  });

  return res;
}

}  // namespace tmwia::core
