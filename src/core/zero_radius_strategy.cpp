#include "tmwia/core/zero_radius_strategy.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace tmwia::core {
namespace {

template <typename T>
std::vector<T> gather(const std::vector<T>& src, const std::vector<std::uint32_t>& idx) {
  std::vector<T> out;
  out.reserve(idx.size());
  for (std::uint32_t i : idx) out.push_back(src[i]);
  return out;
}

}  // namespace

ZeroRadiusStrategy::ZeroRadiusStrategy(PlayerId self, std::vector<PlayerId> players,
                                       std::vector<std::uint32_t> objects, double alpha,
                                       const Params& params, const rng::Rng& shared_rng,
                                       std::string channel_prefix)
    : self_(self), alpha_(alpha), prefix_(std::move(channel_prefix)) {
  const std::size_t n_total = players.size();
  const std::size_t threshold = zero_radius_leaf_threshold(n_total, alpha, params);
  if (std::find(players.begin(), players.end(), self_) == players.end()) {
    throw std::invalid_argument("ZeroRadiusStrategy: self not among players");
  }

  // Pre-size the global estimate: object ids address the oracle's
  // space, so size it to the max id + 1.
  std::uint32_t max_obj = 0;
  for (auto o : objects) max_obj = std::max(max_obj, o);
  values_ = bits::BitVector(max_obj + 1);
  root_objects_ = objects;

  // Walk down the shared recursion tree, keeping the half containing
  // self at every node (Fig. 2: "Let P' be the half that contains p").
  std::uint64_t tag = 1;
  while (std::min(players.size(), objects.size()) >= threshold && !players.empty() &&
         !objects.empty()) {
    const auto split = zero_radius_node_split(players.size(), objects.size(), shared_rng, tag);

    const auto self_pos = static_cast<std::uint32_t>(
        std::find(players.begin(), players.end(), self_) - players.begin());
    if (self_pos >= players.size()) {
      throw std::invalid_argument("ZeroRadiusStrategy: self not among players");
    }
    const bool in_first = std::binary_search(split.p1.begin(), split.p1.end(), self_pos);

    Frame f;
    f.objects = objects;
    const auto& own_p = in_first ? split.p1 : split.p2;
    const auto& sib_p = in_first ? split.p2 : split.p1;
    const auto& own_o = in_first ? split.o1 : split.o2;
    const auto& sib_o = in_first ? split.o2 : split.o1;
    f.sibling_objects = gather(objects, sib_o);
    f.own_child_tag = tag * 2 + (in_first ? 1 : 2);
    f.sibling_child_tag = tag * 2 + (in_first ? 2 : 1);
    f.sibling_player_count = sib_p.size();
    f.min_votes = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(params.zr_vote_frac * alpha_ *
                                              static_cast<double>(sib_p.size()))));
    frames_.push_back(std::move(f));

    players = gather(players, own_p);
    objects = gather(objects, own_o);
    tag = frames_.back().own_child_tag;
  }
  leaf_objects_ = std::move(objects);
  leaf_tag_ = tag;

  // Process deepest node first on the way back up.
  std::reverse(frames_.begin(), frames_.end());
  state_ = State::kLeafProbe;
}

std::optional<billboard::ObjectId> ZeroRadiusStrategy::next_probe(
    const billboard::RoundView& view) {
  switch (state_) {
    case State::kLeafProbe:
      if (leaf_pos_ < leaf_objects_.size()) {
        return leaf_objects_[leaf_pos_];
      }
      // Leaf complete (empty-leaf corner case): fall through to posting.
      pending_post_tag_ = leaf_tag_;
      have_pending_post_ = true;
      state_ = frames_.empty() ? State::kDone : State::kAwait;
      return std::nullopt;

    case State::kAwait: {
      const Frame& f = frames_[level_];
      const auto ch = channel(f.sibling_child_tag);
      if (view.board().posters(ch) < f.sibling_player_count) {
        return std::nullopt;  // sibling half still working
      }
      // All sibling posts in: tally and set up Select with bound 0.
      const auto voted = view.board().popular(ch, static_cast<std::uint32_t>(f.min_votes));
      candidates_.clear();
      for (const auto& vv : voted) candidates_.push_back(vv.vec);
      alive_.assign(candidates_.size(), true);
      mismatches_.assign(candidates_.size(), 0);
      select_cursor_ = 0;
      state_ = State::kSelect;
      [[fallthrough]];
    }

    case State::kSelect: {
      const Frame& f = frames_[level_];
      std::size_t alive_count = 0;
      for (bool a : alive_) alive_count += a ? 1 : 0;

      if (candidates_.size() > 1 && alive_count > 1) {
        // Next coordinate where two alive candidates disagree.
        for (; select_cursor_ < f.sibling_objects.size(); ++select_cursor_) {
          bool saw0 = false, saw1 = false;
          for (std::size_t i = 0; i < candidates_.size(); ++i) {
            if (!alive_[i]) continue;
            (candidates_[i].get(select_cursor_) ? saw1 : saw0) = true;
          }
          if (saw0 && saw1) {
            probing_candidate_coord_ = select_cursor_;
            return f.sibling_objects[select_cursor_];
          }
        }
      }

      // Selection finished for this level: adopt the winner.
      if (!candidates_.empty()) {
        std::size_t best = 0;
        for (std::size_t i = 1; i < candidates_.size(); ++i) {
          const bool better_liveness = alive_[i] && !alive_[best];
          const bool same_liveness = alive_[i] == alive_[best];
          if (better_liveness ||
              (same_liveness &&
               (mismatches_[i] < mismatches_[best] ||
                (mismatches_[i] == mismatches_[best] &&
                 candidates_[i].lex_compare(candidates_[best]) < 0)))) {
            best = i;
          }
        }
        values_.scatter(candidates_[best], f.sibling_objects);
      }

      // Publish the completed node vector for the parent level's
      // sibling players (the root's vector needs no audience).
      if (level_ + 1 < frames_.size()) {
        pending_post_tag_ = frames_[level_ + 1].own_child_tag;
        have_pending_post_ = true;
      }
      ++level_;
      state_ = level_ < frames_.size() ? State::kAwait : State::kDone;
      return std::nullopt;
    }

    case State::kPostChild:
    case State::kDone:
      return std::nullopt;
  }
  return std::nullopt;
}

void ZeroRadiusStrategy::on_result(billboard::ObjectId o, bool value) {
  if (state_ == State::kLeafProbe) {
    values_.set(o, value);
    ++leaf_pos_;
    if (leaf_pos_ == leaf_objects_.size()) {
      pending_post_tag_ = leaf_tag_;
      have_pending_post_ = true;
      state_ = frames_.empty() ? State::kDone : State::kAwait;
    }
    return;
  }
  if (state_ == State::kSelect && probing_candidate_coord_.has_value()) {
    const std::size_t j = *probing_candidate_coord_;
    probing_candidate_coord_.reset();
    for (std::size_t i = 0; i < candidates_.size(); ++i) {
      if (alive_[i] && candidates_[i].get(j) != value) {
        ++mismatches_[i];
        alive_[i] = false;
      }
    }
    ++select_cursor_;  // this coordinate is settled
    return;
  }
  throw std::logic_error("ZeroRadiusStrategy::on_result: unexpected result");
}

std::vector<billboard::PendingPost> ZeroRadiusStrategy::posts() {
  if (!have_pending_post_) return {};
  have_pending_post_ = false;
  // The node's object set: leaf objects for the leaf post, otherwise
  // the just-completed frame's objects.
  const std::vector<std::uint32_t>* objs = &leaf_objects_;
  if (pending_post_tag_ != leaf_tag_) {
    objs = &frames_[level_ - 1].objects;
  }
  return {billboard::PendingPost{channel(pending_post_tag_), values_.project(*objs)}};
}

bits::BitVector ZeroRadiusStrategy::output() const { return values_.project(root_objects_); }

DistributedZeroRadiusResult zero_radius_distributed(billboard::ProbeOracle& oracle,
                                                    double alpha, const Params& params,
                                                    const rng::Rng& shared_rng,
                                                    std::size_t max_rounds) {
  const std::size_t n = oracle.players();
  const std::size_t m = oracle.objects();
  if (max_rounds == 0) max_rounds = 8 * (n + m) + 64;

  std::vector<PlayerId> players(n);
  std::iota(players.begin(), players.end(), 0u);
  std::vector<std::uint32_t> objects(m);
  std::iota(objects.begin(), objects.end(), 0u);

  std::vector<std::unique_ptr<billboard::PlayerStrategy>> strategies;
  std::vector<ZeroRadiusStrategy*> raw;
  strategies.reserve(n);
  for (PlayerId p = 0; p < n; ++p) {
    auto s = std::make_unique<ZeroRadiusStrategy>(p, players, objects, alpha, params,
                                                  shared_rng);
    raw.push_back(s.get());
    strategies.push_back(std::move(s));
  }

  billboard::RoundScheduler sched(oracle);
  DistributedZeroRadiusResult res;
  res.schedule = sched.run(strategies, max_rounds);
  res.outputs.reserve(n);
  for (auto* s : raw) res.outputs.push_back(s->output());
  return res;
}

}  // namespace tmwia::core
