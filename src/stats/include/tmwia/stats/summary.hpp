// Small statistics toolkit used by tests and benches: per-trial
// summaries, binomial confidence intervals for success probabilities
// (Theorems 3.1/4.4/5.4 are "with probability ..." statements), and
// log-log regression for empirical scaling exponents (is the cost curve
// polylog or polynomial?).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tmwia::stats {

/// Collects scalar observations; O(1) moments plus stored samples for
/// exact percentiles. Intended for 1e2..1e6 observations.
class Summary {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return values_.size(); }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Exact percentile via nearest-rank (q in [0,1]). Sorts lazily.
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] double median() const { return percentile(0.5); }

 private:
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

/// Wilson score interval for a binomial proportion.
struct Proportion {
  double estimate = 0.0;
  double lo = 0.0;
  double hi = 0.0;
};

/// Wilson interval for `successes` out of `trials` at ~95% (z = 1.96) by
/// default. trials == 0 yields {0, 0, 1}.
Proportion wilson_interval(std::size_t successes, std::size_t trials, double z = 1.96);

/// Least-squares fit y = a + b*x. Returns {a, b}; b is the slope.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
LinearFit fit_line(std::span<const double> xs, std::span<const double> ys);

/// Fit log(y) = a + b*log(x): the empirical polynomial degree of y(x).
/// A polylog quantity fits with slope -> 0 as x grows; a linear one
/// with slope ~1. Requires positive data.
LinearFit fit_loglog(std::span<const double> xs, std::span<const double> ys);

/// Fit y = a + b*log2(x): detects logarithmic growth directly.
LinearFit fit_semilog(std::span<const double> xs, std::span<const double> ys);

}  // namespace tmwia::stats
