#include "tmwia/stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tmwia::stats {

void Summary::add(double x) {
  sum_ += x;
  sum_sq_ += x * x;
  values_.push_back(x);
  sorted_ = false;
}

double Summary::mean() const {
  if (values_.empty()) return 0.0;
  return sum_ / static_cast<double>(values_.size());
}

double Summary::variance() const {
  const auto n = static_cast<double>(values_.size());
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  // numerically-safer two-pass style using stored values
  double acc = 0.0;
  for (double v : values_) acc += (v - m) * (v - m);
  return acc / (n - 1.0);
}

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::min() const {
  if (values_.empty()) throw std::logic_error("Summary::min on empty summary");
  return *std::min_element(values_.begin(), values_.end());
}

double Summary::max() const {
  if (values_.empty()) throw std::logic_error("Summary::max on empty summary");
  return *std::max_element(values_.begin(), values_.end());
}

double Summary::percentile(double q) const {
  if (values_.empty()) throw std::logic_error("Summary::percentile on empty summary");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("percentile: q outside [0,1]");
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  const auto n = values_.size();
  const auto rank = static_cast<std::size_t>(std::ceil(q * static_cast<double>(n)));
  return values_[rank == 0 ? 0 : rank - 1];
}

Proportion wilson_interval(std::size_t successes, std::size_t trials, double z) {
  if (trials == 0) return {0.0, 0.0, 1.0};
  const auto n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half = z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {p, std::max(0.0, center - half), std::min(1.0, center + half)};
}

LinearFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument("fit_line: need >= 2 equal-length samples");
  }
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit f;
  if (denom == 0.0) {
    f.intercept = sy / n;
    return f;
  }
  f.slope = (n * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / n;
  const double sst = syy - sy * sy / n;
  if (sst > 0.0) {
    double ssr = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double e = ys[i] - (f.intercept + f.slope * xs[i]);
      ssr += e * e;
    }
    f.r2 = 1.0 - ssr / sst;
  } else {
    f.r2 = 1.0;
  }
  return f;
}

LinearFit fit_loglog(std::span<const double> xs, std::span<const double> ys) {
  std::vector<double> lx(xs.size()), ly(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] <= 0.0 || ys[i] <= 0.0) {
      throw std::invalid_argument("fit_loglog: data must be positive");
    }
    lx[i] = std::log2(xs[i]);
    ly[i] = std::log2(ys[i]);
  }
  return fit_line(lx, ly);
}

LinearFit fit_semilog(std::span<const double> xs, std::span<const double> ys) {
  std::vector<double> lx(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] <= 0.0) throw std::invalid_argument("fit_semilog: x must be positive");
    lx[i] = std::log2(xs[i]);
  }
  return fit_line(lx, ys);
}

}  // namespace tmwia::stats
