// The hidden ground truth: an n x m binary preference matrix
// (Definition 1.1). Player code must never touch this type directly —
// it accesses entries only through billboard::ProbeOracle, which
// charges probe cost. Tests and benches use the direct accessors to
// audit outputs (discrepancy, stretch).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tmwia/bits/bitvector.hpp"
#include "tmwia/matrix/ids.hpp"

namespace tmwia::matrix {

/// n players x m objects, one packed BitVector row per player.
class PreferenceMatrix {
 public:
  PreferenceMatrix() = default;
  PreferenceMatrix(std::size_t players, std::size_t objects)
      : objects_(objects), rows_(players, bits::BitVector(objects)) {}

  /// Build from explicit rows; all rows must have equal size.
  explicit PreferenceMatrix(std::vector<bits::BitVector> rows);

  [[nodiscard]] std::size_t players() const { return rows_.size(); }
  [[nodiscard]] std::size_t objects() const { return objects_; }

  [[nodiscard]] bool value(PlayerId p, ObjectId o) const { return rows_[p].get(o); }
  void set_value(PlayerId p, ObjectId o, bool v) { rows_[p].set(o, v); }

  [[nodiscard]] const bits::BitVector& row(PlayerId p) const { return rows_[p]; }
  [[nodiscard]] bits::BitVector& row(PlayerId p) { return rows_[p]; }
  [[nodiscard]] std::span<const bits::BitVector> rows() const { return rows_; }

  /// Hamming diameter of the players in `ids` (audit; O(|ids|^2)).
  [[nodiscard]] std::size_t subset_diameter(std::span<const PlayerId> ids) const;

  /// True iff `ids` is an (alpha, D)-typical set: |ids| >= alpha*n and
  /// pairwise distance <= D (Section 3 "Simplifying assumptions").
  [[nodiscard]] bool is_typical(std::span<const PlayerId> ids, double alpha,
                                std::size_t D) const;

  /// Discrepancy Delta = max_p dist(outputs[p], v(p)) over `ids`.
  [[nodiscard]] std::size_t discrepancy(std::span<const bits::BitVector> outputs,
                                        std::span<const PlayerId> ids) const;

  /// Stretch rho = Delta / D(ids); returns Delta when the diameter is 0
  /// and Delta > 0 would make the ratio infinite (the D=0 convention
  /// used in our experiments: stretch 0 iff exact).
  [[nodiscard]] double stretch(std::span<const bits::BitVector> outputs,
                               std::span<const PlayerId> ids) const;

 private:
  std::size_t objects_ = 0;
  std::vector<bits::BitVector> rows_;
};

}  // namespace tmwia::matrix
