// Player/object identifier types, split out of preference_matrix.hpp so
// that strategy-side code (the algorithm tower, billboard strategies)
// can name players and objects WITHOUT being able to name — let alone
// read — the hidden PreferenceMatrix. tmwia-lint's
// `matrix-read-in-strategy` rule forbids including preference_matrix.hpp
// from strategy code; this header is the sanctioned replacement.
#pragma once

#include <cstdint>

namespace tmwia::matrix {

using PlayerId = std::uint32_t;
using ObjectId = std::uint32_t;

}  // namespace tmwia::matrix
