// Workload generators for the experiments.
//
// The paper makes *no* assumption on the matrix, so the generators span
// the whole spectrum the related-work section discusses:
//  * planted (alpha, D) communities — the typical sets the theorems
//    quantify over, with exact control of the planted diameter;
//  * multiple overlapping communities of different radii;
//  * the adversarial-diversity regime (many types + per-user noise)
//    where low-rank/non-interactive baselines break (experiment E9);
//  * the Markov "type" generative model of Kumar et al. [12] and the
//    low-rank model the SVD line of work [5,14,15] assumes — as
//    *controls* where the baselines are expected to do well.
#pragma once

#include <cstdint>
#include <vector>

#include "tmwia/matrix/preference_matrix.hpp"
#include "tmwia/rng/rng.hpp"

namespace tmwia::matrix {

/// A generated instance: the hidden matrix plus the planted community
/// structure so experiments can audit against ground truth.
struct Instance {
  PreferenceMatrix matrix;
  /// Each planted community, as ascending player-id lists.
  std::vector<std::vector<PlayerId>> communities;
  /// The community centers (one BitVector per community).
  std::vector<bits::BitVector> centers;

  /// Players in no community (fully random rows).
  [[nodiscard]] std::vector<PlayerId> outsiders() const;
};

/// Parameters of one planted community.
struct CommunitySpec {
  double alpha = 0.5;      ///< fraction of players in the community
  std::size_t radius = 0;  ///< each member flips exactly `radius` coords
                           ///< of the center => planted diameter <= 2*radius
};

/// One community of exactly ceil(alpha*n) players around a random
/// center; members flip exactly `radius` uniformly chosen coordinates;
/// everyone else gets an i.i.d. uniform row.
Instance planted_community(std::size_t n, std::size_t m, const CommunitySpec& spec,
                           rng::Rng& rng);

/// Several disjoint planted communities (specs must sum to alpha <= 1);
/// remaining players uniform.
Instance planted_communities(std::size_t n, std::size_t m,
                             const std::vector<CommunitySpec>& specs, rng::Rng& rng);

/// The E9(b) adversarial-diversity workload: `types` community centers,
/// players split evenly among them, each player at exactly `radius`
/// flips from its center, plus `noise_fraction` of players replaced by
/// i.i.d. uniform rows. With many types and nonzero radius the matrix
/// has a flat spectrum and low-rank reconstructions degrade, yet every
/// community is an (alpha, 2*radius)-typical set.
Instance adversarial_diversity(std::size_t n, std::size_t m, std::size_t types,
                               std::size_t radius, double noise_fraction, rng::Rng& rng);

/// Kumar et al. style Markov "type" model: k types, each type t is a
/// vector of per-object probabilities theta[t][o] in {p0, 1-p0}; each
/// player picks a uniform type and samples coordinates independently.
Instance markov_type_model(std::size_t n, std::size_t m, std::size_t k, double p0,
                           rng::Rng& rng);

/// SVD-friendly control: k well-separated canonical rows; each player
/// copies one canonical row exactly and then flips each coordinate
/// independently with probability `noise` (tiny, per [6]'s assumption).
Instance low_rank_model(std::size_t n, std::size_t m, std::size_t k, double noise,
                        rng::Rng& rng);

/// Uniform i.i.d. matrix (no structure at all): the "everyone is
/// esoteric" worst case where even the optimum needs ~m probes.
Instance uniform_random(std::size_t n, std::size_t m, rng::Rng& rng);

/// Evolve an instance one epoch: every community center drifts by
/// `center_flips` coordinate flips (all members follow — the community
/// moves as a block, keeping its diameter), and additionally each
/// player individually flips `player_flips` coordinates (taste jitter).
/// Models the intro's "tracking dynamic environment" framing; see
/// experiment E15.
void drift(Instance& inst, std::size_t center_flips, std::size_t player_flips,
           rng::Rng& rng);

/// A uniformly random BitVector of length m.
bits::BitVector random_vector(std::size_t m, rng::Rng& rng);

/// `v` with exactly `flips` distinct uniformly-chosen coordinates
/// flipped.
bits::BitVector flip_random(const bits::BitVector& v, std::size_t flips, rng::Rng& rng);

}  // namespace tmwia::matrix
