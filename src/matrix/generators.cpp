#include "tmwia/matrix/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "tmwia/rng/partition.hpp"

namespace tmwia::matrix {

std::vector<PlayerId> Instance::outsiders() const {
  std::vector<bool> member(matrix.players(), false);
  for (const auto& c : communities) {
    for (PlayerId p : c) member[p] = true;
  }
  std::vector<PlayerId> out;
  for (PlayerId p = 0; p < matrix.players(); ++p) {
    if (!member[p]) out.push_back(p);
  }
  return out;
}

void drift(Instance& inst, std::size_t center_flips, std::size_t player_flips,
           rng::Rng& rng) {
  const std::size_t m = inst.matrix.objects();
  // Block drift: flip the same coordinates in the center and in every
  // member's row, so pairwise distances inside the community are
  // untouched.
  for (std::size_t c = 0; c < inst.communities.size(); ++c) {
    const auto coords = rng::sample_without_replacement(
        m, std::min(center_flips, m), rng);
    for (std::uint32_t j : coords) inst.centers[c].flip(j);
    for (PlayerId p : inst.communities[c]) {
      for (std::uint32_t j : coords) inst.matrix.row(p).flip(j);
    }
  }
  // Individual jitter (increases diameters by up to 2*player_flips).
  if (player_flips > 0) {
    for (PlayerId p = 0; p < inst.matrix.players(); ++p) {
      const auto coords = rng::sample_without_replacement(
          m, std::min(player_flips, m), rng);
      for (std::uint32_t j : coords) inst.matrix.row(p).flip(j);
    }
  }
}

bits::BitVector random_vector(std::size_t m, rng::Rng& rng) {
  bits::BitVector v(m);
  // One generator draw per 64 coordinates (benchmark setup spends most
  // of its time here at the bit-per-draw rate).
  v.fill_words([&rng] { return rng.next(); });
  return v;
}

bits::BitVector flip_random(const bits::BitVector& v, std::size_t flips, rng::Rng& rng) {
  if (flips > v.size()) {
    throw std::invalid_argument("flip_random: more flips than coordinates");
  }
  bits::BitVector out = v;
  const auto coords = rng::sample_without_replacement(v.size(), flips, rng);
  for (std::uint32_t c : coords) out.flip(c);
  return out;
}

Instance planted_community(std::size_t n, std::size_t m, const CommunitySpec& spec,
                           rng::Rng& rng) {
  return planted_communities(n, m, {spec}, rng);
}

Instance planted_communities(std::size_t n, std::size_t m,
                             const std::vector<CommunitySpec>& specs, rng::Rng& rng) {
  double total_alpha = 0.0;
  for (const auto& s : specs) total_alpha += s.alpha;
  if (total_alpha > 1.0 + 1e-9) {
    throw std::invalid_argument("planted_communities: alphas sum past 1");
  }

  Instance inst;
  inst.matrix = PreferenceMatrix(n, m);

  // Random player order, carved into consecutive community blocks.
  std::vector<PlayerId> order(n);
  std::iota(order.begin(), order.end(), 0u);
  rng::shuffle(order, rng);

  std::size_t cursor = 0;
  for (const auto& spec : specs) {
    const auto size = static_cast<std::size_t>(
        std::ceil(spec.alpha * static_cast<double>(n) - 1e-9));
    if (cursor + size > n) {
      throw std::invalid_argument("planted_communities: community sizes exceed n");
    }
    bits::BitVector center = random_vector(m, rng);
    std::vector<PlayerId> members(order.begin() + static_cast<std::ptrdiff_t>(cursor),
                                  order.begin() + static_cast<std::ptrdiff_t>(cursor + size));
    std::sort(members.begin(), members.end());
    for (PlayerId p : members) {
      inst.matrix.row(p) = spec.radius == 0 ? center : flip_random(center, spec.radius, rng);
    }
    inst.communities.push_back(std::move(members));
    inst.centers.push_back(std::move(center));
    cursor += size;
  }

  for (std::size_t i = cursor; i < n; ++i) {
    inst.matrix.row(order[i]) = random_vector(m, rng);
  }
  return inst;
}

Instance adversarial_diversity(std::size_t n, std::size_t m, std::size_t types,
                               std::size_t radius, double noise_fraction, rng::Rng& rng) {
  if (types == 0) throw std::invalid_argument("adversarial_diversity: types must be >= 1");
  const auto noisy = static_cast<std::size_t>(noise_fraction * static_cast<double>(n));
  const std::size_t structured = n - noisy;
  const double alpha_each =
      static_cast<double>(structured) / static_cast<double>(types) / static_cast<double>(n);

  std::vector<CommunitySpec> specs(types, CommunitySpec{alpha_each, radius});
  return planted_communities(n, m, specs, rng);
}

Instance markov_type_model(std::size_t n, std::size_t m, std::size_t k, double p0,
                           rng::Rng& rng) {
  if (k == 0) throw std::invalid_argument("markov_type_model: k must be >= 1");
  if (p0 < 0.0 || p0 > 1.0) throw std::invalid_argument("markov_type_model: p0 in [0,1]");

  Instance inst;
  inst.matrix = PreferenceMatrix(n, m);
  inst.communities.resize(k);

  // theta[t][o] in {p0, 1-p0}: the type's tendency to like object o.
  std::vector<bits::BitVector> tendency;
  tendency.reserve(k);
  for (std::size_t t = 0; t < k; ++t) {
    tendency.push_back(random_vector(m, rng));
    inst.centers.push_back(tendency.back());
  }

  for (PlayerId p = 0; p < n; ++p) {
    const std::size_t t = rng.uniform(k);
    inst.communities[t].push_back(p);
    auto& row = inst.matrix.row(p);
    for (ObjectId o = 0; o < m; ++o) {
      const double like_prob = tendency[t].get(o) ? 1.0 - p0 : p0;
      if (rng.bernoulli(like_prob)) row.set(o, true);
    }
  }
  return inst;
}

Instance low_rank_model(std::size_t n, std::size_t m, std::size_t k, double noise,
                        rng::Rng& rng) {
  if (k == 0) throw std::invalid_argument("low_rank_model: k must be >= 1");
  Instance inst;
  inst.matrix = PreferenceMatrix(n, m);
  inst.communities.resize(k);
  for (std::size_t t = 0; t < k; ++t) {
    inst.centers.push_back(random_vector(m, rng));
  }
  for (PlayerId p = 0; p < n; ++p) {
    const std::size_t t = rng.uniform(k);
    inst.communities[t].push_back(p);
    auto& row = inst.matrix.row(p);
    row = inst.centers[t];
    for (ObjectId o = 0; o < m; ++o) {
      if (rng.bernoulli(noise)) row.flip(o);
    }
  }
  return inst;
}

Instance uniform_random(std::size_t n, std::size_t m, rng::Rng& rng) {
  Instance inst;
  inst.matrix = PreferenceMatrix(n, m);
  for (PlayerId p = 0; p < n; ++p) {
    inst.matrix.row(p) = random_vector(m, rng);
  }
  return inst;
}

}  // namespace tmwia::matrix
