#include "tmwia/matrix/preference_matrix.hpp"

#include <stdexcept>

namespace tmwia::matrix {

PreferenceMatrix::PreferenceMatrix(std::vector<bits::BitVector> rows) : rows_(std::move(rows)) {
  if (!rows_.empty()) {
    objects_ = rows_[0].size();
    for (const auto& r : rows_) {
      if (r.size() != objects_) {
        throw std::invalid_argument("PreferenceMatrix: ragged rows");
      }
    }
  }
}

std::size_t PreferenceMatrix::subset_diameter(std::span<const PlayerId> ids) const {
  std::size_t d = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    for (std::size_t j = i + 1; j < ids.size(); ++j) {
      d = std::max(d, rows_[ids[i]].hamming(rows_[ids[j]]));
    }
  }
  return d;
}

bool PreferenceMatrix::is_typical(std::span<const PlayerId> ids, double alpha,
                                  std::size_t D) const {
  if (static_cast<double>(ids.size()) + 1e-9 < alpha * static_cast<double>(players())) {
    return false;
  }
  return subset_diameter(ids) <= D;
}

std::size_t PreferenceMatrix::discrepancy(std::span<const bits::BitVector> outputs,
                                          std::span<const PlayerId> ids) const {
  std::size_t d = 0;
  for (PlayerId p : ids) {
    d = std::max(d, outputs[p].hamming(rows_[p]));
  }
  return d;
}

double PreferenceMatrix::stretch(std::span<const bits::BitVector> outputs,
                                 std::span<const PlayerId> ids) const {
  const std::size_t delta = discrepancy(outputs, ids);
  const std::size_t diam = subset_diameter(ids);
  if (diam == 0) return static_cast<double>(delta);
  return static_cast<double>(delta) / static_cast<double>(diam);
}

}  // namespace tmwia::matrix
