#include "tmwia/billboard/strategies.hpp"

#include <numeric>

#include "tmwia/rng/partition.hpp"

namespace tmwia::billboard {

std::optional<ObjectId> SoloStrategy::next_probe(const RoundView& view) {
  (void)view;
  if (next_ >= estimate_.size()) return std::nullopt;
  return static_cast<ObjectId>(next_);
}

void SoloStrategy::on_result(ObjectId o, bool value) {
  estimate_.set(o, value);
  ++next_;
}

MimicStrategy::MimicStrategy(PlayerId self, std::size_t objects, std::size_t sample_budget,
                             std::size_t spot_checks, rng::Rng rng, std::size_t patience)
    : self_(self),
      sample_budget_(std::min(sample_budget, objects)),
      spot_checks_(spot_checks),
      rng_(rng),
      patience_(patience),
      own_probed_(objects),
      own_values_(objects),
      estimate_(objects) {
  sample_order_.resize(objects);
  std::iota(sample_order_.begin(), sample_order_.end(), 0u);
  rng::shuffle(sample_order_, rng_);
}

std::optional<ObjectId> MimicStrategy::next_probe(const RoundView& view) {
  // Phase 1: random sampling.
  if (sample_pos_ < sample_budget_) {
    return sample_order_[sample_pos_];
  }

  // Phase 2: adopt from the best-matching poster, spot-check disputed
  // coordinates, and keep refreshing the estimate as the billboard
  // fills up — the match's posts accumulate over rounds, so quitting at
  // the first adoption would freeze a half-covered estimate.
  adopt_from_best(view);
  std::optional<ObjectId> probe;
  if (best_match_.has_value() && checks_done_ < spot_checks_) {
    // Verify a random coordinate filled from the mimic source.
    for (std::size_t tries = 0; tries < 16 && !probe.has_value(); ++tries) {
      const auto o = static_cast<ObjectId>(rng_.uniform(estimate_.size()));
      if (!own_probed_.get(o) && view.is_posted(*best_match_, o)) {
        ++checks_done_;
        probe = o;
      }
    }
  }
  if (!probe.has_value()) {
    if (patience_ == 0) {
      done_ = true;
      return std::nullopt;
    }
    --patience_;
  }
  return probe;
}

void MimicStrategy::on_result(ObjectId o, bool value) {
  own_probed_.set(o, true);
  own_values_.set(o, value);
  estimate_.set(o, value);
  if (sample_pos_ < sample_budget_) ++sample_pos_;
}

void MimicStrategy::adopt_from_best(const RoundView& view) {
  // Score every other player by agreement on our probed coordinates.
  std::size_t best_agree = 0;
  std::optional<PlayerId> best;
  for (PlayerId q = 0; q < view.players(); ++q) {
    if (q == self_) continue;
    std::size_t agree = 0, overlap = 0;
    for (std::size_t i = 0; i < sample_pos_; ++i) {
      const ObjectId o = sample_order_[i];
      if (!view.is_posted(q, o)) continue;
      ++overlap;
      if (view.posted_value(q, o) == own_values_.get(o)) ++agree;
    }
    if (overlap >= 4 && agree * 2 > overlap && agree > best_agree) {
      best_agree = agree;
      best = q;
    }
  }
  best_match_ = best;

  // Rebuild the estimate: own probes win; the mimic source fills the
  // rest of what it posted.
  estimate_ = own_values_ & own_probed_;
  if (best.has_value()) {
    for (ObjectId o = 0; o < estimate_.size(); ++o) {
      if (!own_probed_.get(o) && view.is_posted(*best, o)) {
        estimate_.set(o, view.posted_value(*best, o));
      }
    }
  }
}

}  // namespace tmwia::billboard
