#include "tmwia/billboard/billboard.hpp"

#include <algorithm>

#include "tmwia/obs/flight_recorder.hpp"
#include "tmwia/obs/metrics.hpp"

namespace tmwia::billboard {
namespace {

struct BoardMetrics {
  obs::MetricsRegistry::Counter posts =
      obs::MetricsRegistry::global().counter("billboard.posts");
  obs::MetricsRegistry::Counter reads =
      obs::MetricsRegistry::global().counter("billboard.reads");
};

const BoardMetrics& board_metrics() {
  static const BoardMetrics m;
  return m;
}

}  // namespace

void Billboard::post(const std::string& channel, matrix::PlayerId p, const bits::BitVector& v) {
  board_metrics().posts.inc();
  // Vector content is logged as (hash, size) — enough for the replayer
  // to distinguish posts without storing whole rows in the flight log.
  if (auto* rec = obs::recorder()) {
    rec->vector_post(static_cast<std::uint32_t>(p), channel, v.hash(), v.size());
  }
  std::lock_guard<std::mutex> lk(mu_);
  channels_[channel].posts.insert_or_assign(p, v);
}

std::vector<VotedVector> tally(std::span<const bits::BitVector> posts,
                               std::uint32_t min_votes) {
  // Group identical vectors: bucket by hash, verify by equality.
  std::unordered_map<std::uint64_t, std::vector<VotedVector>> buckets;
  for (const auto& v : posts) {
    auto& bucket = buckets[v.hash()];
    bool found = false;
    for (auto& vv : bucket) {
      if (vv.vec == v) {
        ++vv.votes;
        found = true;
        break;
      }
    }
    if (!found) bucket.push_back({v, 1});
  }

  std::vector<VotedVector> out;
  for (auto& [h, bucket] : buckets) {
    for (auto& vv : bucket) {
      if (vv.votes >= min_votes) out.push_back(std::move(vv));
    }
  }
  std::sort(out.begin(), out.end(), [](const VotedVector& a, const VotedVector& b) {
    return a.vec.lex_compare(b.vec) < 0;
  });
  return out;
}

std::vector<VotedVector> Billboard::popular(const std::string& channel,
                                            std::uint32_t min_votes) const {
  board_metrics().reads.inc();
  std::vector<bits::BitVector> posts;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = channels_.find(channel);
    if (it == channels_.end()) return {};
    posts.reserve(it->second.posts.size());
    for (const auto& [p, v] : it->second.posts) posts.push_back(v);
  }
  return tally(posts, min_votes);
}

std::size_t Billboard::posters(const std::string& channel) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = channels_.find(channel);
  return it == channels_.end() ? 0 : it->second.posts.size();
}

void Billboard::clear(const std::string& channel) {
  std::lock_guard<std::mutex> lk(mu_);
  channels_.erase(channel);
}

std::size_t Billboard::total_posts() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t t = 0;
  for (const auto& [name, ch] : channels_) t += ch.posts.size();
  return t;
}

std::vector<Billboard::ChannelDump> Billboard::export_posts() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<ChannelDump> out;
  out.reserve(channels_.size());
  for (const auto& [name, ch] : channels_) {
    ChannelDump dump;
    dump.channel = name;
    dump.posts.reserve(ch.posts.size());
    for (const auto& [p, v] : ch.posts) dump.posts.emplace_back(p, v);
    std::sort(dump.posts.begin(), dump.posts.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    out.push_back(std::move(dump));
  }
  std::sort(out.begin(), out.end(),
            [](const ChannelDump& a, const ChannelDump& b) { return a.channel < b.channel; });
  return out;
}

void Billboard::restore_posts(const std::vector<ChannelDump>& dump) {
  std::lock_guard<std::mutex> lk(mu_);
  channels_.clear();
  for (const auto& ch : dump) {
    auto& posts = channels_[ch.channel].posts;
    for (const auto& [p, v] : ch.posts) posts.insert_or_assign(p, v);
  }
}

}  // namespace tmwia::billboard
