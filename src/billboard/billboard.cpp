#include "tmwia/billboard/billboard.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "tmwia/obs/flight_recorder.hpp"
#include "tmwia/obs/metrics.hpp"
#include "tmwia/obs/profile.hpp"

namespace tmwia::billboard {
namespace {

struct BoardMetrics {
  obs::MetricsRegistry::Counter posts =
      obs::MetricsRegistry::global().counter("billboard.posts");
  obs::MetricsRegistry::Counter reads =
      obs::MetricsRegistry::global().counter("billboard.reads");
  obs::MetricsRegistry::Counter consolidations =
      obs::MetricsRegistry::global().counter("billboard.consolidations");
  obs::MetricsRegistry::Counter tally_hits =
      obs::MetricsRegistry::global().counter("billboard.tally_cache_hits");
};

const BoardMetrics& board_metrics() {
  static const BoardMetrics m;
  return m;
}

}  // namespace

void Billboard::post(const std::string& channel, matrix::PlayerId p, const bits::BitVector& v) {
  board_metrics().posts.inc();
  // Vector content is logged as (hash, size) — enough for the replayer
  // to distinguish posts without storing whole rows in the flight log.
  if (auto* rec = obs::recorder()) {
    rec->vector_post(static_cast<std::uint32_t>(p), channel, v.hash(), v.size());
  }
  support::MutexLock lk(mu_);
  auto& ch = channels_[channel];
  ch.pending.emplace_back(p, v);
  ++ch.version;
}

void Billboard::post_many(const std::string& channel, std::span<const matrix::PlayerId> players,
                          std::span<const bits::BitVector> rows) {
  if (players.size() != rows.size()) {
    throw std::invalid_argument("Billboard::post_many: players/rows size mismatch");
  }
  if (players.empty()) return;
  board_metrics().posts.add(players.size());
  if (auto* rec = obs::recorder()) {
    for (std::size_t i = 0; i < players.size(); ++i) {
      rec->vector_post(static_cast<std::uint32_t>(players[i]), channel, rows[i].hash(),
                       rows[i].size());
    }
  }
  support::MutexLock lk(mu_);
  auto& ch = channels_[channel];
  ch.pending.reserve(ch.pending.size() + players.size());
  for (std::size_t i = 0; i < players.size(); ++i) {
    ch.pending.emplace_back(players[i], rows[i]);
  }
  ch.version += players.size();
}

void Billboard::consolidate(Channel& ch) const {
  if (ch.pending.empty()) return;
  board_metrics().consolidations.inc();

  // Later posts by the same player overwrite earlier ones; a stable
  // sort keeps arrival order within a player, so walking runs and
  // keeping the last entry applies the overwrites.
  std::stable_sort(ch.pending.begin(), ch.pending.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });

  const matrix::PlayerId max_pending = ch.pending.back().first;
  const std::size_t new_size =
      std::max<std::size_t>(ch.posted.size(), static_cast<std::size_t>(max_pending) + 1);

  // Word-parallel widening copy of the old poster bitmap (unused tail
  // bits of the old vector are zero by class invariant).
  bits::BitVector posted(new_size);
  const auto old_words = ch.posted.words();
  for (std::size_t w = 0; w < old_words.size(); ++w) posted.set_word(w, old_words[w]);
  for (const auto& [p, v] : ch.pending) posted.set(p, true);

  // Merge the two player-ordered sequences (existing rows enumerate via
  // the old index) into a dense row array aligned with the new index.
  std::vector<bits::BitVector> rows;
  rows.reserve(posted.count_ones());
  const auto old_players = ch.rank.one_positions();
  std::size_t oi = 0;  // cursor into old_players / ch.rows
  std::size_t pi = 0;  // cursor into pending runs
  while (oi < old_players.size() || pi < ch.pending.size()) {
    const bool take_pending =
        oi >= old_players.size() ||
        (pi < ch.pending.size() && ch.pending[pi].first <= old_players[oi]);
    if (take_pending) {
      const matrix::PlayerId p = ch.pending[pi].first;
      std::size_t last = pi;
      while (last + 1 < ch.pending.size() && ch.pending[last + 1].first == p) ++last;
      rows.push_back(std::move(ch.pending[last].second));
      pi = last + 1;
      if (oi < old_players.size() && old_players[oi] == p) ++oi;  // overwritten
    } else {
      rows.push_back(std::move(ch.rows[oi]));
      ++oi;
    }
  }

  ch.pending.clear();
  ch.posted = std::move(posted);
  ch.rank = bits::RankSelect(ch.posted);
  ch.rows = std::move(rows);
  ch.indexed_version = ch.version;
}

std::vector<VotedVector> tally(std::span<const bits::BitVector> posts,
                               std::uint32_t min_votes) {
  // Sort (hash, index) pairs — one content hash per post, then a cheap
  // flat sort — and count runs. Full vector comparisons happen only
  // inside a hash run (collision guard), and only the few distinct
  // survivors pay the final lexicographic sort.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> order;
  order.reserve(posts.size());
  for (std::size_t i = 0; i < posts.size(); ++i) {
    order.emplace_back(posts[i].hash(), static_cast<std::uint32_t>(i));
  }
  std::sort(order.begin(), order.end());

  std::vector<VotedVector> out;
  struct Distinct {
    std::uint32_t idx;
    std::uint32_t votes;
  };
  std::vector<Distinct> run;  // distinct vectors within one hash run
  for (std::size_t i = 0; i < order.size();) {
    std::size_t j = i;
    run.clear();
    for (; j < order.size() && order[j].first == order[i].first; ++j) {
      const auto idx = order[j].second;
      bool found = false;
      for (auto& d : run) {
        if (posts[d.idx] == posts[idx]) {
          ++d.votes;
          found = true;
          break;
        }
      }
      if (!found) run.push_back({idx, 1});
    }
    for (const auto& d : run) {
      if (d.votes >= min_votes) out.push_back({posts[d.idx], d.votes});
    }
    i = j;
  }
  std::sort(out.begin(), out.end(), [](const VotedVector& a, const VotedVector& b) {
    return a.vec.lex_compare(b.vec) < 0;
  });
  return out;
}

std::vector<VotedVector> Billboard::popular(const std::string& channel,
                                            std::uint32_t min_votes) const {
  board_metrics().reads.inc();
  obs::profile_cost(obs::Cost::kRankQueries, 1);
  support::MutexLock lk(mu_);
  const auto it = channels_.find(channel);
  if (it == channels_.end()) return {};
  auto& ch = it->second;
  consolidate(ch);
  if (ch.tally_valid && ch.tally_version == ch.version && ch.tally_min_votes == min_votes) {
    board_metrics().tally_hits.inc();
    return ch.tally_cache;
  }
  ch.tally_cache = tally(ch.rows, min_votes);
  ch.tally_version = ch.version;
  ch.tally_min_votes = min_votes;
  ch.tally_valid = true;
  return ch.tally_cache;
}

std::size_t Billboard::posters(const std::string& channel) const {
  support::MutexLock lk(mu_);
  const auto it = channels_.find(channel);
  if (it == channels_.end()) return 0;
  consolidate(it->second);
  return it->second.rank.ones();
}

bool Billboard::has_posted(const std::string& channel, matrix::PlayerId p) const {
  support::MutexLock lk(mu_);
  const auto it = channels_.find(channel);
  if (it == channels_.end()) return false;
  consolidate(it->second);
  return p < it->second.posted.size() && it->second.posted.get(p);
}

Billboard::ChannelView Billboard::snapshot(const std::string& channel) const {
  support::MutexLock lk(mu_);
  ChannelView view;
  const auto it = channels_.find(channel);
  if (it == channels_.end()) return view;
  consolidate(it->second);
  view.players = it->second.rank.one_positions();
  view.rows = it->second.rows;
  return view;
}

void Billboard::clear(const std::string& channel) {
  support::MutexLock lk(mu_);
  const auto it = channels_.find(channel);
  if (it == channels_.end()) return;
  // Keep the entry so the epoch survives name recycling.
  auto& ch = it->second;
  ch.pending.clear();
  ch.posted = bits::BitVector();
  ch.rank = bits::RankSelect();
  ch.rows.clear();
  ch.tally_valid = false;
  ch.tally_cache.clear();
  ++ch.version;
  ch.indexed_version = ch.version;
  ++ch.epoch;
}

std::size_t Billboard::total_posts() const {
  support::MutexLock lk(mu_);
  std::size_t t = 0;
  for (auto& [name, ch] : channels_) {
    consolidate(ch);
    t += ch.rows.size();
  }
  return t;
}

std::vector<Billboard::ChannelDump> Billboard::export_posts() const {
  support::MutexLock lk(mu_);
  std::vector<ChannelDump> out;
  out.reserve(channels_.size());
  for (auto& [name, ch] : channels_) {
    consolidate(ch);
    if (ch.rows.empty()) continue;  // cleared channels keep only their epoch
    ChannelDump dump;
    dump.channel = name;
    const auto players = ch.rank.one_positions();
    dump.posts.reserve(players.size());
    for (std::size_t i = 0; i < players.size(); ++i) {
      dump.posts.emplace_back(players[i], ch.rows[i]);
    }
    out.push_back(std::move(dump));
  }
  std::sort(out.begin(), out.end(),
            [](const ChannelDump& a, const ChannelDump& b) { return a.channel < b.channel; });
  return out;
}

void Billboard::restore_posts(const std::vector<ChannelDump>& dump) {
  support::MutexLock lk(mu_);
  channels_.clear();
  for (const auto& chd : dump) {
    auto& ch = channels_[chd.channel];
    for (const auto& [p, v] : chd.posts) {
      ch.pending.emplace_back(p, v);
      ++ch.version;
    }
  }
}

}  // namespace tmwia::billboard
