// Reference PlayerStrategy implementations for the RoundScheduler:
//
//  * SoloStrategy      — probe every object in order; exact after m
//    rounds. The baseline semantics of "go it alone".
//  * MimicStrategy     — a billboard-native collaborative heuristic:
//    spend a sampling budget on random probes, then each round look for
//    the poster whose posted values agree best with one's own sample
//    and fill unprobed coordinates from their posts, spot-checking one
//    disputed coordinate per round. A scheduler-level cousin of the
//    "collaborate with strangers" idea of [3].
//
// Both are deliberately simple: they exist to exercise the synchronous
// executor and to give downstream users starting points, not to replace
// the core algorithms.
#pragma once

#include <optional>
#include <vector>

#include "tmwia/billboard/round_scheduler.hpp"
#include "tmwia/bits/bitvector.hpp"
#include "tmwia/rng/rng.hpp"

namespace tmwia::billboard {

/// Probes objects 0..m-1 in order; estimate() is exact once done.
class SoloStrategy final : public PlayerStrategy {
 public:
  explicit SoloStrategy(std::size_t objects) : estimate_(objects) {}

  std::optional<ObjectId> next_probe(const RoundView& view) override;
  void on_result(ObjectId o, bool value) override;
  [[nodiscard]] bool done() const override { return next_ >= estimate_.size(); }

  [[nodiscard]] const bits::BitVector& estimate() const { return estimate_; }

 private:
  bits::BitVector estimate_;
  std::size_t next_ = 0;
};

/// Random sampling + best-matching-poster adoption with spot checks.
class MimicStrategy final : public PlayerStrategy {
 public:
  /// `self` is this player's id (to skip its own posts); the sampling
  /// budget is the number of random probes before mimicking starts;
  /// `spot_checks` bounds the verification probes afterwards;
  /// `patience` is how many rounds to idle waiting for enough billboard
  /// overlap before giving up on finding a match (0: one shot).
  MimicStrategy(PlayerId self, std::size_t objects, std::size_t sample_budget,
                std::size_t spot_checks, rng::Rng rng, std::size_t patience = 0);

  std::optional<ObjectId> next_probe(const RoundView& view) override;
  void on_result(ObjectId o, bool value) override;
  [[nodiscard]] bool done() const override { return done_; }

  /// Current estimate: own probes where available, the best-matching
  /// poster's values elsewhere (0 where nobody posted).
  [[nodiscard]] const bits::BitVector& estimate() const { return estimate_; }
  [[nodiscard]] std::optional<PlayerId> adopted_from() const { return best_match_; }

 private:
  void adopt_from_best(const RoundView& view);

  PlayerId self_;
  std::size_t sample_budget_;
  std::size_t spot_checks_;
  rng::Rng rng_;

  std::vector<ObjectId> sample_order_;
  std::size_t sample_pos_ = 0;
  std::size_t checks_done_ = 0;
  std::size_t patience_ = 0;

  bits::BitVector own_probed_;
  bits::BitVector own_values_;
  bits::BitVector estimate_;
  std::optional<PlayerId> best_match_;
  bool done_ = false;
};

}  // namespace tmwia::billboard
