// Billboard: the shared public posting surface.
//
// Besides raw probe results (kept by ProbeOracle), the algorithms post
// *vectors* — ZeroRadius step 4 has each player in one half publish its
// output vector for its object half, and the other half then adopts any
// vector "voted for by at least an alpha/2 fraction" of the posters.
// The billboard therefore supports named channels of (player -> vector)
// posts with vote aggregation by vector equality.
//
// Thread safety: posts from concurrent players are serialized by a
// mutex; aggregation reads take the same mutex.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "tmwia/bits/bitvector.hpp"
#include "tmwia/matrix/ids.hpp"

namespace tmwia::billboard {

/// A vector together with how many players posted exactly it.
struct VotedVector {
  bits::BitVector vec;
  std::uint32_t votes = 0;
};

/// Group identical vectors of `posts` and return those with at least
/// `min_votes` occurrences, in deterministic (lexicographic) order.
/// This is the "voted for by at least a beta fraction" primitive of
/// Zero Radius step 4 and Small Radius step 1b.
std::vector<VotedVector> tally(std::span<const bits::BitVector> posts,
                               std::uint32_t min_votes);

class Billboard {
 public:
  /// Player p posts vector v on `channel` (overwrites p's previous post
  /// on that channel, as a player has one current opinion per channel).
  void post(const std::string& channel, matrix::PlayerId p, const bits::BitVector& v);

  /// All distinct vectors on `channel` with >= min_votes posters,
  /// in deterministic (lexicographic) order.
  [[nodiscard]] std::vector<VotedVector> popular(const std::string& channel,
                                                 std::uint32_t min_votes) const;

  /// Number of players who posted on `channel`.
  [[nodiscard]] std::size_t posters(const std::string& channel) const;

  /// Drop a channel's posts (phases recycle channel names).
  void clear(const std::string& channel);

  /// Total posts across all channels (diagnostics).
  [[nodiscard]] std::size_t total_posts() const;

  /// One channel's posts in deterministic order, for checkpointing.
  struct ChannelDump {
    std::string channel;
    std::vector<std::pair<matrix::PlayerId, bits::BitVector>> posts;  ///< sorted by player
  };
  /// Every channel (sorted by name) with its posts (sorted by player).
  [[nodiscard]] std::vector<ChannelDump> export_posts() const;
  /// Replace the board contents with `dump`. Unlike post(), restoring
  /// does not notify the flight recorder — the events were already in
  /// the log when the checkpoint was cut.
  void restore_posts(const std::vector<ChannelDump>& dump);

 private:
  struct Channel {
    std::unordered_map<matrix::PlayerId, bits::BitVector> posts;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, Channel> channels_;
};

}  // namespace tmwia::billboard
