// Billboard: the shared public posting surface.
//
// Besides raw probe results (kept by ProbeOracle), the algorithms post
// *vectors* — ZeroRadius step 4 has each player in one half publish its
// output vector for its object half, and the other half then adopts any
// vector "voted for by at least an alpha/2 fraction" of the posters.
// The billboard therefore supports named channels of (player -> vector)
// posts with vote aggregation by vector equality.
//
// Storage per channel is a succinct posted-player index: posts append
// to a small pending log in O(1), and the first read consolidates them
// into a packed poster bitvector with a rank/select directory plus a
// dense row array ordered by player id (rows[rank1(p)] is p's post).
// Reads that arrive at the same channel version — the await-polling
// pattern of the distributed strategies, which asks posters()/popular()
// every round while a vote fills — hit the consolidated index and the
// version-keyed tally cache instead of rescanning the posts.
//
// Thread safety: posts from concurrent players are serialized by a
// mutex; aggregation reads take the same mutex.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "tmwia/bits/bitvector.hpp"
#include "tmwia/bits/rank_select.hpp"
#include "tmwia/matrix/ids.hpp"
#include "tmwia/support/thread_annotations.hpp"

namespace tmwia::billboard {

/// A vector together with how many players posted exactly it.
struct VotedVector {
  bits::BitVector vec;
  std::uint32_t votes = 0;
};

/// Group identical vectors of `posts` and return those with at least
/// `min_votes` occurrences, in deterministic (lexicographic) order.
/// This is the "voted for by at least a beta fraction" primitive of
/// Zero Radius step 4 and Small Radius step 1b.
std::vector<VotedVector> tally(std::span<const bits::BitVector> posts,
                               std::uint32_t min_votes);

class Billboard {
 public:
  /// Player p posts vector v on `channel` (overwrites p's previous post
  /// on that channel, as a player has one current opinion per channel).
  /// O(1): appends to the channel's pending log.
  void post(const std::string& channel, matrix::PlayerId p, const bits::BitVector& v);

  /// Batched post: players[i] posts rows[i] (spans must be equal
  /// length). Observably identical to posting each pair in index order
  /// — same recorder events, same totals — but the channel name is
  /// resolved and the lock taken once per batch instead of once per
  /// row. Zero Radius publishes every node's outputs this way.
  void post_many(const std::string& channel, std::span<const matrix::PlayerId> players,
                 std::span<const bits::BitVector> rows);

  /// All distinct vectors on `channel` with >= min_votes posters,
  /// in deterministic (lexicographic) order. Cached per (channel
  /// version, min_votes): repeated polling of an unchanged channel does
  /// not re-tally.
  [[nodiscard]] std::vector<VotedVector> popular(const std::string& channel,
                                                 std::uint32_t min_votes) const;

  /// Number of players who posted on `channel`. O(1) after the posts
  /// since the last read are consolidated.
  [[nodiscard]] std::size_t posters(const std::string& channel) const;

  /// Has player p posted on `channel`? One bit probe of the poster
  /// index.
  [[nodiscard]] bool has_posted(const std::string& channel, matrix::PlayerId p) const;

  /// The channel's current posts, ordered by player id ascending
  /// (players[i] posted rows[i]). Rows are copies; the poster index
  /// itself stays internal to keep the lock discipline simple.
  struct ChannelView {
    std::vector<matrix::PlayerId> players;
    std::vector<bits::BitVector> rows;
  };
  [[nodiscard]] ChannelView snapshot(const std::string& channel) const;

  /// Drop a channel's posts (phases recycle channel names). Bumps the
  /// channel epoch: a later post under the same name starts a fresh
  /// index.
  void clear(const std::string& channel);

  /// Total posts across all channels (diagnostics).
  [[nodiscard]] std::size_t total_posts() const;

  /// One channel's posts in deterministic order, for checkpointing.
  struct ChannelDump {
    std::string channel;
    std::vector<std::pair<matrix::PlayerId, bits::BitVector>> posts;  ///< sorted by player
  };
  /// Every channel (sorted by name) with its posts (sorted by player).
  [[nodiscard]] std::vector<ChannelDump> export_posts() const;
  /// Replace the board contents with `dump`. Unlike post(), restoring
  /// does not notify the flight recorder — the events were already in
  /// the log when the checkpoint was cut.
  void restore_posts(const std::vector<ChannelDump>& dump);

 private:
  struct Channel {
    std::uint64_t version = 0;  ///< bumped on every post and clear
    std::uint64_t epoch = 0;    ///< bumped on clear

    // Appended by post(), merged into the index by consolidate().
    std::vector<std::pair<matrix::PlayerId, bits::BitVector>> pending;

    // Consolidated succinct index: bit p of `posted` marks a poster,
    // `rank` is its rank/select directory, and rows[rank.rank1(p)] is
    // p's current post (dense, ordered by player id).
    bits::BitVector posted;
    bits::RankSelect rank;
    std::vector<bits::BitVector> rows;
    std::uint64_t indexed_version = 0;  ///< version `posted`/`rank`/`rows` reflect

    // popular() result memo for the polling pattern.
    std::uint64_t tally_version = 0;
    std::uint32_t tally_min_votes = 0;
    bool tally_valid = false;
    std::vector<VotedVector> tally_cache;
  };

  /// Merge `pending` into the consolidated index (later posts by the
  /// same player win). Amortized O(new posts) per read burst. `ch` is
  /// always an element of channels_, hence the capability requirement.
  void consolidate(Channel& ch) const TMWIA_REQUIRES(mu_);

  mutable support::Mutex mu_;
  mutable std::unordered_map<std::string, Channel> channels_ TMWIA_GUARDED_BY(mu_);
};

}  // namespace tmwia::billboard
