// ProbeOracle: the single gateway between player code and the hidden
// preference matrix.
//
// Model recap (Section 1.1): in each round every player probes one
// object of its own row at unit cost, and the result is posted on the
// shared billboard. We simulate asynchronously but account faithfully:
//  * `invocations(p)` counts every Probe call by player p — this is the
//    quantity the theorems bound (e.g. Thm 3.2's k(D+1));
//  * `charged(p)` counts *distinct* (p, o) probes — re-reading one's own
//    posted result is a billboard read, not a new probe;
//  * rounds of a phase = max over participating players of the probes
//    spent in that phase, matching the one-probe-per-round lockstep.
//
// Thread safety: concurrent probes by *different* players are safe
// (per-player ledgers, per-player memo rows). Player code runs
// single-threaded per player.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "tmwia/faults/fault_injector.hpp"
#include "tmwia/matrix/preference_matrix.hpp"
#include "tmwia/obs/flight_recorder.hpp"

namespace tmwia::billboard {

class ProtocolAuditor;

using matrix::ObjectId;
using matrix::PlayerId;

/// Probe-noise model: the paper's intro motivates diversity partly by
/// "time-variable factors (such as noise, weather, mood)". The oracle
/// can inject Bernoulli(epsilon) read errors in two flavours:
///  * kSticky — the error is a deterministic function of (p, o): a
///    miscalibrated sensor / a user who consistently misjudges an item.
///    Re-probing returns the same wrong answer.
///  * kFresh  — independent error per invocation: a flaky link. Re-
///    probing can disagree with earlier reads.
struct NoiseModel {
  enum class Kind : std::uint8_t { kNone, kSticky, kFresh };
  Kind kind = Kind::kNone;
  double epsilon = 0.0;
  std::uint64_t seed = 0;

  static NoiseModel none() { return {}; }
  static NoiseModel sticky(double epsilon, std::uint64_t seed) {
    return {Kind::kSticky, epsilon, seed};
  }
  static NoiseModel fresh(double epsilon, std::uint64_t seed) {
    return {Kind::kFresh, epsilon, seed};
  }
};

class ProbeOracle {
 public:
  explicit ProbeOracle(const matrix::PreferenceMatrix& truth,
                       NoiseModel noise = NoiseModel::none());

  [[nodiscard]] std::size_t players() const { return truth_->players(); }
  [[nodiscard]] std::size_t objects() const { return truth_->objects(); }

  /// Attach a fault injector: subsequent probes may throw
  /// faults::PlayerCrashedError (attempt not charged — a dead player
  /// sends nothing) or faults::ProbeFailedError (attempt charged to
  /// invocations; the probe was sent, the result lost). The injector
  /// must outlive the oracle's use. nullptr detaches.
  void set_fault_injector(faults::FaultInjector* injector) { injector_ = injector; }
  [[nodiscard]] faults::FaultInjector* fault_injector() const { return injector_; }

#if TMWIA_AUDIT
  /// Attach a ProtocolAuditor: probes, result reads and (through the
  /// RoundScheduler) posts are reported to it so the paper's billboard
  /// model can be checked at runtime. Attach before the first probe so
  /// the cost ledgers line up. The auditor must outlive the oracle's
  /// use; nullptr detaches. Compiled out when TMWIA_AUDIT is 0.
  void set_auditor(ProtocolAuditor* auditor) { auditor_ = auditor; }
  [[nodiscard]] ProtocolAuditor* auditor() const { return auditor_; }
#endif

  /// Player p probes object o: returns v(p)[o], charges cost, records
  /// the result on the probe record (billboard side). With a fault
  /// injector attached this is the *raw* probe: injected faults
  /// propagate as exceptions (see set_fault_injector).
  ///
  /// The no-injector/no-auditor path is inlined here: at tens of
  /// millions of calls per run this is the hottest function in the
  /// system, and out-of-line it costs more in call overhead than in
  /// work.
  bool probe(PlayerId p, ObjectId o) {
    bool fast = injector_ == nullptr;
#if TMWIA_AUDIT
    fast = fast && auditor_ == nullptr;
#endif
    if (!fast) return probe_slow(p, o);
    if (p >= players() || o >= objects()) {
      throw std::out_of_range("ProbeOracle::probe: player/object out of range");
    }
    const auto inv = bump(invocations_[p]);
    if (!probed_[p].get(o)) {
      bump(charged_[p]);
      probed_[p].set(o, true);
    }
    const bool value = noisy_read(p, o, inv);
    values_[p].set(o, value);
    if (auto* rec = obs::recorder()) rec->probe(p, o, value, inv);
    return value;
  }

  /// Batched probe: player p probes objs[0..n) in order, results packed
  /// into the low n bits of `out` (bit j = probe of objs[j]).
  /// Observably identical to `for j: probe_resilient(p, objs[j])` —
  /// same ledger totals, same per-invocation noise stream, same
  /// recorder events — but the bookkeeping (counter bumps, recorder
  /// lookup, bounds checks) is amortized over the whole block. This is
  /// the Zero Radius leaf's probe path: every player reads its full
  /// object subset, tens of millions of bits per run.
  void probe_block(PlayerId p, std::span<const ObjectId> objs, bits::BitVector& out) {
    bool fast = injector_ == nullptr;
#if TMWIA_AUDIT
    fast = fast && auditor_ == nullptr;
#endif
    if (!fast) {
      for (std::size_t j = 0; j < objs.size(); ++j) out.set(j, probe_resilient(p, objs[j]));
      return;
    }
    if (p >= players()) {
      throw std::out_of_range("ProbeOracle::probe_block: player out of range");
    }
    for (const auto o : objs) {
      if (o >= objects()) {
        throw std::out_of_range("ProbeOracle::probe_block: object out of range");
      }
    }
    const auto n = objs.size();
    const auto inv0 = invocations_[p].load(std::memory_order_relaxed);
    invocations_[p].store(inv0 + n, std::memory_order_relaxed);
    auto& probed = probed_[p];
    auto& values = values_[p];
    auto* rec = obs::recorder();
    const bool noisy = noise_.kind != NoiseModel::Kind::kNone;
    const auto& truth_row = truth_->row(p);
    std::uint64_t newly_charged = 0;
    std::uint64_t word = 0;
    // tmwia-lint: allow(per-bit-loop) the probe protocol is per (p,o): ledger, noise stream, and recorder events are defined one probe at a time
    for (std::size_t j = 0; j < n; ++j) {
      const auto o = objs[j];
      if (!probed.get(o)) {
        ++newly_charged;
        probed.set(o, true);
      }
      bool value = truth_row.get(o);
      if (noisy) [[unlikely]] value ^= noise_flip(p, o, inv0 + j);
      values.set(o, value);
      if (rec != nullptr) [[unlikely]] rec->probe(p, o, value, inv0 + j);
      word |= static_cast<std::uint64_t>(value) << (j & 63);
      if ((j & 63) == 63) {
        out.set_word(j >> 6, word);
        word = 0;
      }
    }
    if ((n & 63) != 0) out.set_word(n >> 6, word);
    if (newly_charged != 0) {
      const auto c = charged_[p].load(std::memory_order_relaxed);
      charged_[p].store(c + newly_charged, std::memory_order_relaxed);
    }
  }

  /// Fault-tolerant probe used by the centrally-simulated phases:
  /// retries transient failures up to the plan's retry budget (each
  /// attempt charged), and degrades instead of throwing — a crashed or
  /// retry-exhausted player is marked failed on the injector and served
  /// its posted value for (p, o) (0 if never probed) from then on.
  /// Without an injector this is exactly probe().
  bool probe_resilient(PlayerId p, ObjectId o) {
    if (injector_ == nullptr) return probe(p, o);
    return probe_resilient_slow(p, o);
  }

  /// Has (p, o) been probed already (by p)? Billboard read, free.
  [[nodiscard]] bool is_probed(PlayerId p, ObjectId o) const;

  /// Result of a past probe (the value posted on the billboard — under
  /// fresh noise this is the most recent read, which may differ from
  /// the truth). Requires is_probed(p, o). Billboard read: any player
  /// may call this for any p (results are public).
  [[nodiscard]] bool probed_value(PlayerId p, ObjectId o) const;

  /// Packed per-player probe record: which objects p has probed, and
  /// the posted values. Billboard reads (free), used by degraded
  /// players that can no longer probe.
  [[nodiscard]] const bits::BitVector& probed_mask(PlayerId p) const { return probed_[p]; }
  [[nodiscard]] const bits::BitVector& posted_values(PlayerId p) const { return values_[p]; }

  /// Total Probe invocations by player p (the theorem-bound quantity).
  [[nodiscard]] std::uint64_t invocations(PlayerId p) const {
    return invocations_[p].load(std::memory_order_relaxed);
  }

  /// Distinct (p, o) pairs probed by p.
  [[nodiscard]] std::uint64_t charged(PlayerId p) const {
    return charged_[p].load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t total_invocations() const;
  [[nodiscard]] std::uint64_t total_charged() const;

  /// Max invocations over all players: the number of lockstep rounds a
  /// synchronous execution of the whole history would need.
  [[nodiscard]] std::uint64_t max_invocations() const;

  /// Snapshot of per-player invocation counters, for phase accounting:
  ///   auto before = oracle.snapshot();
  ///   ... phase ...
  ///   rounds = oracle.rounds_since(before);
  [[nodiscard]] std::vector<std::uint64_t> snapshot() const;
  [[nodiscard]] std::uint64_t rounds_since(const std::vector<std::uint64_t>& before) const;

  /// The full per-player cost-and-record state, for checkpointing.
  /// Restoring into a fresh oracle over the same truth matrix resumes
  /// accounting (and billboard-side probe records) exactly where the
  /// export froze it.
  struct Ledger {
    std::vector<std::uint64_t> invocations;
    std::vector<std::uint64_t> charged;
    std::vector<bits::BitVector> probed;
    std::vector<bits::BitVector> values;
  };
  [[nodiscard]] Ledger export_ledger() const;
  /// Throws std::invalid_argument when the ledger shape does not match
  /// this oracle's (players, objects). Call only at quiescent points.
  void restore_ledger(const Ledger& ledger);

 private:
  /// Increment a per-player ledger counter, returning the old value.
  /// Player p's counters have a single writer (player code runs
  /// single-threaded per player), so a relaxed load+store pair suffices
  /// — an atomic RMW would put a LOCK-prefixed op in the hottest loop
  /// in the system for exclusivity nobody contends.
  static std::uint64_t bump(std::atomic<std::uint64_t>& c) {
    const auto v = c.load(std::memory_order_relaxed);
    c.store(v + 1, std::memory_order_relaxed);
    return v;
  }

  /// The noiseless read folds to one bit load; noise models pay for a
  /// hash out of line.
  [[nodiscard]] bool noisy_read(PlayerId p, ObjectId o, std::uint64_t invocation) const {
    const bool truth = truth_->value(p, o);
    if (noise_.kind == NoiseModel::Kind::kNone) [[likely]] return truth;
    return truth ^ noise_flip(p, o, invocation);
  }
  /// Whether the configured noise model flips this read. Inline: in a
  /// noisy run every probe pays this hash, so the call must fold into
  /// the probe fast path.
  [[nodiscard]] bool noise_flip(PlayerId p, ObjectId o, std::uint64_t invocation) const {
    switch (noise_.kind) {
      case NoiseModel::Kind::kNone:
        return false;
      case NoiseModel::Kind::kSticky:
        return noise_bernoulli(noise_mix(noise_.seed, p, o), noise_.epsilon);
      case NoiseModel::Kind::kFresh:
        return noise_bernoulli(noise_mix(noise_.seed ^ invocation, p, o), noise_.epsilon);
    }
    return false;
  }
  /// SplitMix64-style stateless mixer for the sticky/fresh noise draws.
  static std::uint64_t noise_mix(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
    std::uint64_t z = a * 0x9e3779b97f4a7c15ull + b * 0xbf58476d1ce4e5b9ull + c + 1;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  static bool noise_bernoulli(std::uint64_t h, double p) {
    return static_cast<double>(h >> 11) * 0x1.0p-53 < p;
  }
  /// Full probe path with fault-injection and audit hooks.
  bool probe_slow(PlayerId p, ObjectId o);
  bool probe_resilient_slow(PlayerId p, ObjectId o);
  [[nodiscard]] bool fallback_read(PlayerId p, ObjectId o) const;

  const matrix::PreferenceMatrix* truth_;
  NoiseModel noise_;
  faults::FaultInjector* injector_ = nullptr;
#if TMWIA_AUDIT
  ProtocolAuditor* auditor_ = nullptr;
#endif
  std::vector<std::atomic<std::uint64_t>> invocations_;
  std::vector<std::atomic<std::uint64_t>> charged_;
  // Per-player record of which objects were probed and the posted
  // values (packed bitmaps).
  std::vector<bits::BitVector> probed_;
  std::vector<bits::BitVector> values_;
};

}  // namespace tmwia::billboard
