// ProtocolAuditor: a runtime checker of the paper's billboard model
// (Section 1.1 / our DESIGN.md section 9).
//
// The theorems only hold if the implementation respects the model
// exactly; the auditor makes the contract executable. It attaches to a
// ProbeOracle (and, through it, to RoundScheduler runs) and asserts:
//
//  A1  one probe per player per round — in round-clocked executions a
//      player lands at most one *successful* probe per lockstep round
//      (failed attempts are the same probe resent, and are charged to
//      cost, not to the per-round budget);
//  A2  every post corresponds to a real probe — a result published on
//      the billboard at the end of round r must match a successful
//      probe by that player in round r (no fabricated posts);
//  A3  no read-before-post — a result first probed in round r is
//      private to the prober until the round ends; any billboard read
//      of it during round r is an information leak;
//  A4  cost accounting — the auditor keeps its own per-player
//      invocation ledger and cross-checks it against the oracle's
//      counters and against RunReport totals.
//
// Violations are recorded (never thrown) in a structured AuditReport;
// tests assert report.clean(). Hooks in ProbeOracle/RoundScheduler are
// compiled out entirely when TMWIA_AUDIT is 0 (CMake -DTMWIA_AUDIT=OFF)
// so release builds pay nothing; with hooks compiled in but no auditor
// attached the cost is one pointer test per probe.
//
// Thread safety mirrors ProbeOracle: per-player ledgers are owner-
// written (the centralized phases parallelize OVER players), aggregate
// counters are relaxed atomics, and the violation list takes a mutex
// (violations are rare by construction). Round-mode state is only
// touched by the single-threaded RoundScheduler.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "tmwia/bits/bitvector.hpp"
#include "tmwia/matrix/ids.hpp"
#include "tmwia/support/thread_annotations.hpp"

namespace tmwia::billboard {

struct AuditViolation {
  enum class Kind : std::uint8_t {
    kDoubleProbe,     ///< A1: >1 successful probe by one player in one round
    kPhantomPost,     ///< A2: published result with no matching probe that round
    kReadBeforePost,  ///< A3: billboard read of a result not yet published
    kCostMismatch,    ///< A4: auditor ledger disagrees with oracle/RunReport
  };

  Kind kind = Kind::kDoubleProbe;
  matrix::PlayerId player = 0;
  matrix::ObjectId object = 0;
  std::uint64_t round = 0;  ///< lockstep round (0 outside round mode)
  std::string detail;
};

[[nodiscard]] const char* to_string(AuditViolation::Kind kind);

/// The structured outcome of an audited execution.
struct AuditReport {
  std::vector<AuditViolation> violations;
  std::uint64_t rounds_audited = 0;
  std::uint64_t probes_audited = 0;  ///< successful probes seen
  std::uint64_t reads_audited = 0;   ///< billboard result reads seen
  std::uint64_t posts_audited = 0;   ///< result publications seen

  [[nodiscard]] bool clean() const { return violations.empty(); }
  /// Machine-readable summary (CI logs, LINT/AUDIT tooling).
  [[nodiscard]] std::string to_json() const;
};

class ProtocolAuditor {
 public:
  ProtocolAuditor(std::size_t players, std::size_t objects);

  // ---- hook surface (called by ProbeOracle / RoundScheduler) ----

  /// A lockstep round starts (RoundScheduler). Enables A1-A3.
  void begin_round(std::uint64_t round);
  /// The round's results are published; A2 is checked for posts seen.
  void end_round();

  /// A probe invocation was charged to player p (success or transient
  /// failure) — the A4 ledger, matching ProbeOracle::invocations.
  void on_probe_attempt(matrix::PlayerId p);
  /// Player p successfully probed object o.
  void on_probe(matrix::PlayerId p, matrix::ObjectId o);
  /// The scheduler published p's result for o at the end of this round.
  void on_post(matrix::PlayerId p, matrix::ObjectId o);
  /// Someone read the posted result of (p, o) off the billboard.
  void on_read(matrix::PlayerId p, matrix::ObjectId o);

  // ---- verification (call after the run) ----

  /// A4 vs the oracle: `expected[p]` is the oracle's invocations(p)
  /// ledger (ProbeOracle::snapshot()). The auditor must have been
  /// attached before the first probe.
  void verify_invocations(const std::vector<std::uint64_t>& expected);

  /// A4 vs a RunReport: `total_probes` must equal the audited attempt
  /// total and `rounds` the max per-player attempts (the lockstep-round
  /// equivalence the oracle's accounting promises).
  void verify_totals(std::uint64_t total_probes, std::uint64_t rounds);

  /// Snapshot the report accumulated so far.
  [[nodiscard]] AuditReport report() const;

  /// Zero every ledger and forget recorded violations (fresh run on a
  /// shared oracle).
  void reset();

 private:
  void record(AuditViolation v);

  std::size_t players_;
  std::size_t objects_;

  // A4 ledgers: deliberately NOT guarded by mu_ — attempts_[p] is
  // owner-written (only the thread running player p, relaxed — see
  // ProbeOracle), the aggregates are relaxed atomics read at serial
  // points.
  std::vector<std::atomic<std::uint64_t>> attempts_;
  std::atomic<std::uint64_t> probes_{0};
  std::atomic<std::uint64_t> reads_{0};
  std::atomic<std::uint64_t> posts_{0};
  std::atomic<std::uint64_t> rounds_{0};

  // Round mode: unguarded by contract — only the single-threaded
  // RoundScheduler touches this block (begin_round/end_round/on_post
  // are serial hook points).
  bool round_active_ = false;
  std::uint64_t round_ = 0;
  std::vector<std::uint32_t> round_probe_count_;   ///< per player, this round
  std::vector<bits::BitVector> probed_this_round_; ///< (p, o) probed this round
  std::vector<std::pair<matrix::PlayerId, matrix::ObjectId>> round_probes_;
  std::vector<std::pair<matrix::PlayerId, matrix::ObjectId>> round_posts_;
  std::vector<bits::BitVector> posted_;  ///< public up to end of previous round

  mutable support::Mutex mu_;  ///< violations are rare; the list takes a real lock
  std::vector<AuditViolation> violations_ TMWIA_GUARDED_BY(mu_);
};

}  // namespace tmwia::billboard
