// RoundScheduler: a faithful executor of the paper's synchronous model
// (Section 1.1): "the algorithm proceeds in parallel rounds: in each
// round, each player reads the shared billboard, probes one object, and
// writes the result on the billboard."
//
// The library's algorithm implementations simulate this model centrally
// (probe accounting is equivalent — see ProbeOracle), but the scheduler
// is the reference semantics: strategies are per-player state machines
// restricted to one probe per round, reading only results posted in
// *earlier* rounds. It is used by tests to validate the accounting
// equivalence and by downstream users who want to drop in their own
// interactive strategies.
//
// Thread safety: the scheduler is single-threaded by contract — one
// thread drives run()/next_round(), and every mutation of its round
// state happens on that thread. The concurrent structures it touches
// (Billboard, ProbeOracle ledgers, ProtocolAuditor) carry their own
// capability annotations; the scheduler's members are deliberately
// unguarded because sharing a RoundScheduler across threads is a usage
// error, not a supported mode.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "tmwia/billboard/billboard.hpp"
#include "tmwia/billboard/probe_oracle.hpp"

namespace tmwia::billboard {

class RoundScheduler;

/// Read-only window onto the public state a player may consult during a
/// round: everything posted up to the END OF THE PREVIOUS round.
class RoundView {
 public:
  [[nodiscard]] std::size_t round() const { return round_; }
  [[nodiscard]] std::size_t players() const { return oracle_->players(); }
  [[nodiscard]] std::size_t objects() const { return oracle_->objects(); }

  /// Was (p, o) probed in an earlier round?
  [[nodiscard]] bool is_posted(PlayerId p, ObjectId o) const {
    return posted_[p].get(o);
  }
  /// The posted value (requires is_posted).
  [[nodiscard]] bool posted_value(PlayerId p, ObjectId o) const {
    if (!posted_[p].get(o)) {
      throw std::logic_error("RoundView: entry not posted yet");
    }
    return oracle_->probed_value(p, o);
  }

  /// Vector posts published in earlier rounds (votes, published
  /// outputs). Posts made *this* round become visible next round.
  [[nodiscard]] const Billboard& board() const { return *board_; }

 private:
  friend class RoundScheduler;
  RoundView(const ProbeOracle& oracle, const Billboard& board,
            const std::vector<bits::BitVector>& posted, std::size_t round)
      : oracle_(&oracle), board_(&board), posted_(posted), round_(round) {}

  const ProbeOracle* oracle_;
  const Billboard* board_;
  const std::vector<bits::BitVector>& posted_;
  std::size_t round_;
};

/// A vector post queued during a round; applied (made public) when the
/// round ends.
struct PendingPost {
  std::string channel;
  bits::BitVector vec;
};

/// A per-player interactive strategy. One instance per player; the
/// scheduler drives it one probe per round until done() or the round
/// cap.
class PlayerStrategy {
 public:
  virtual ~PlayerStrategy() = default;

  /// Choose this round's probe (nullopt: idle this round). The view
  /// exposes only earlier rounds' results.
  virtual std::optional<ObjectId> next_probe(const RoundView& view) = 0;

  /// Receive this round's probe result (only called if next_probe
  /// returned an object).
  virtual void on_result(ObjectId o, bool value) = 0;

  /// Vector posts to publish at the END of this round (default: none).
  /// Called after next_probe/on_result each round.
  virtual std::vector<PendingPost> posts() { return {}; }

  /// True once the player has nothing left to do.
  [[nodiscard]] virtual bool done() const = 0;
};

struct ScheduleResult {
  std::size_t rounds = 0;         ///< rounds executed
  std::size_t idle_probes = 0;    ///< rounds players chose to idle
  bool all_done = false;          ///< every strategy reported done()

  // Fault accounting (all zero without an attached FaultInjector).
  std::size_t crash_skips = 0;     ///< player-rounds lost to crash-stop
  std::size_t probe_failures = 0;  ///< transient probe failures seen (incl. retries)
  std::size_t posts_dropped = 0;   ///< vector posts lost before publication
  std::size_t posts_delayed = 0;   ///< vector posts deferred to a later round
  /// Strategies that threw from next_probe/on_result/posts. A throwing
  /// strategy is isolated: it is marked failed and skipped from then
  /// on; every other player is unaffected.
  std::vector<PlayerId> failed_strategies;
};

/// Drive one strategy per player in lockstep. Strategies may be null
/// (that player never probes). Stops when every non-null strategy is
/// done or after max_rounds.
///
/// Fault semantics (when the oracle has a FaultInjector attached): the
/// scheduler engages the injector's round clock, so crash windows are
/// global lockstep rounds and recovery works. A down player's rounds
/// are skipped (counted in crash_skips); a down player with a scheduled
/// recovery keeps the run alive, one without does not. Transient probe
/// failures are retried within the round up to the plan's retry budget
/// (every attempt charged to invocations); on exhaustion the strategy
/// simply gets no result that round. Pending vector posts may be
/// dropped or delayed; delayed posts become visible at the start of the
/// round they come due (any still queued when the run ends are flushed
/// to the board on exit).
class RoundScheduler {
 public:
  explicit RoundScheduler(ProbeOracle& oracle);

  ScheduleResult run(std::vector<std::unique_ptr<PlayerStrategy>>& strategies,
                     std::size_t max_rounds);

  /// The vector-post surface (visible state only; in-round posts are
  /// buffered until the round ends).
  [[nodiscard]] const Billboard& board() const { return board_; }

  /// Round number the next run() call starts at. Each run() advances it
  /// past the last round it touched, so repeated calls on one scheduler
  /// (e.g. an engine::Supervisor driving phases) share a monotone round
  /// clock — injector crash windows, the auditor, and the flight
  /// recorder all see globally increasing round numbers.
  [[nodiscard]] std::size_t next_round() const { return start_round_; }

  /// Override the starting round of the next run() (normally only used
  /// when reconstructing a scheduler mid-run).
  void resume_at(std::size_t round) { start_round_ = round; }

 private:
  ProbeOracle* oracle_;
  Billboard board_;
  // What has been posted up to the end of the previous round; updated
  // once per round so in-round probes are invisible to peers.
  std::vector<bits::BitVector> posted_;
  // First round of the next run() call (see next_round()).
  std::size_t start_round_ = 0;
};

}  // namespace tmwia::billboard
