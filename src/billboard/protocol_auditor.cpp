#include "tmwia/billboard/protocol_auditor.hpp"

#include <algorithm>
#include <sstream>

namespace tmwia::billboard {

const char* to_string(AuditViolation::Kind kind) {
  switch (kind) {
    case AuditViolation::Kind::kDoubleProbe:
      return "double_probe";
    case AuditViolation::Kind::kPhantomPost:
      return "phantom_post";
    case AuditViolation::Kind::kReadBeforePost:
      return "read_before_post";
    case AuditViolation::Kind::kCostMismatch:
      return "cost_mismatch";
  }
  return "unknown";
}

std::string AuditReport::to_json() const {
  std::ostringstream os;
  os << "{\"clean\":" << (clean() ? "true" : "false")
     << ",\"rounds_audited\":" << rounds_audited
     << ",\"probes_audited\":" << probes_audited
     << ",\"reads_audited\":" << reads_audited
     << ",\"posts_audited\":" << posts_audited << ",\"violations\":[";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const auto& v = violations[i];
    if (i != 0) os << ",";
    os << "{\"kind\":\"" << to_string(v.kind) << "\",\"player\":" << v.player
       << ",\"object\":" << v.object << ",\"round\":" << v.round << ",\"detail\":\""
       << v.detail << "\"}";
  }
  os << "]}";
  return os.str();
}

ProtocolAuditor::ProtocolAuditor(std::size_t players, std::size_t objects)
    : players_(players),
      objects_(objects),
      attempts_(players),
      round_probe_count_(players, 0),
      probed_this_round_(players, bits::BitVector(objects)),
      posted_(players, bits::BitVector(objects)) {}

void ProtocolAuditor::record(AuditViolation v) {
  const support::MutexLock lock(mu_);
  violations_.push_back(std::move(v));
}

void ProtocolAuditor::begin_round(std::uint64_t round) {
  round_active_ = true;
  round_ = round;
  rounds_.fetch_add(1, std::memory_order_relaxed);
  std::fill(round_probe_count_.begin(), round_probe_count_.end(), 0);
  round_probes_.clear();
  round_posts_.clear();
}

void ProtocolAuditor::end_round() {
  // A2: every published result must match a successful probe this round.
  for (const auto& [p, o] : round_posts_) {
    if (!probed_this_round_[p].get(o)) {
      record({AuditViolation::Kind::kPhantomPost, p, o, round_,
              "posted result has no matching probe this round"});
    }
    posted_[p].set(o, true);
  }
  // Sparse clear: only the bits this round actually touched.
  for (const auto& [p, o] : round_probes_) {
    posted_[p].set(o, true);  // the round is over; the result is public
    probed_this_round_[p].set(o, false);
  }
  round_active_ = false;
}

void ProtocolAuditor::on_probe_attempt(matrix::PlayerId p) {
  if (p < players_) attempts_[p].fetch_add(1, std::memory_order_relaxed);
}

void ProtocolAuditor::on_probe(matrix::PlayerId p, matrix::ObjectId o) {
  probes_.fetch_add(1, std::memory_order_relaxed);
  if (!round_active_ || p >= players_ || o >= objects_) return;
  // A1: one successful probe per player per round. Transient failures
  // retried within the round are the same probe resent (they land in
  // the attempt ledger, not here).
  if (++round_probe_count_[p] > 1) {
    record({AuditViolation::Kind::kDoubleProbe, p, o, round_,
            "player landed a second successful probe in one round"});
  }
  probed_this_round_[p].set(o, true);
  round_probes_.emplace_back(p, o);
}

void ProtocolAuditor::on_post(matrix::PlayerId p, matrix::ObjectId o) {
  posts_.fetch_add(1, std::memory_order_relaxed);
  if (!round_active_ || p >= players_ || o >= objects_) return;
  round_posts_.emplace_back(p, o);
}

void ProtocolAuditor::on_read(matrix::PlayerId p, matrix::ObjectId o) {
  reads_.fetch_add(1, std::memory_order_relaxed);
  if (!round_active_ || p >= players_ || o >= objects_) return;
  // A3: a result first probed this round is private to its prober
  // until the round ends. Results posted in earlier rounds are public.
  if (probed_this_round_[p].get(o) && !posted_[p].get(o)) {
    record({AuditViolation::Kind::kReadBeforePost, p, o, round_,
            "billboard read of a result not yet published"});
  }
}

void ProtocolAuditor::verify_invocations(const std::vector<std::uint64_t>& expected) {
  const std::size_t n = std::min(expected.size(), attempts_.size());
  for (std::size_t p = 0; p < n; ++p) {
    const auto audited = attempts_[p].load(std::memory_order_relaxed);
    if (audited != expected[p]) {
      record({AuditViolation::Kind::kCostMismatch, static_cast<matrix::PlayerId>(p), 0,
              round_,
              "audited " + std::to_string(audited) + " invocations, oracle ledger says " +
                  std::to_string(expected[p])});
    }
  }
  if (expected.size() != attempts_.size()) {
    record({AuditViolation::Kind::kCostMismatch, 0, 0, round_,
            "ledger size mismatch: audited " + std::to_string(attempts_.size()) +
                " players, expected " + std::to_string(expected.size())});
  }
}

void ProtocolAuditor::verify_totals(std::uint64_t total_probes, std::uint64_t rounds) {
  std::uint64_t total = 0;
  std::uint64_t mx = 0;
  for (const auto& a : attempts_) {
    const auto v = a.load(std::memory_order_relaxed);
    total += v;
    mx = std::max(mx, v);
  }
  if (total != total_probes) {
    record({AuditViolation::Kind::kCostMismatch, 0, 0, round_,
            "audited " + std::to_string(total) + " total probes, report claims " +
                std::to_string(total_probes)});
  }
  if (mx != rounds) {
    record({AuditViolation::Kind::kCostMismatch, 0, 0, round_,
            "audited max " + std::to_string(mx) + " probes/player, report claims " +
                std::to_string(rounds) + " rounds"});
  }
}

AuditReport ProtocolAuditor::report() const {
  AuditReport r;
  r.rounds_audited = rounds_.load(std::memory_order_relaxed);
  r.probes_audited = probes_.load(std::memory_order_relaxed);
  r.reads_audited = reads_.load(std::memory_order_relaxed);
  r.posts_audited = posts_.load(std::memory_order_relaxed);
  const support::MutexLock lock(mu_);
  r.violations = violations_;
  return r;
}

void ProtocolAuditor::reset() {
  for (auto& a : attempts_) a.store(0, std::memory_order_relaxed);
  probes_.store(0, std::memory_order_relaxed);
  reads_.store(0, std::memory_order_relaxed);
  posts_.store(0, std::memory_order_relaxed);
  rounds_.store(0, std::memory_order_relaxed);
  round_active_ = false;
  round_ = 0;
  std::fill(round_probe_count_.begin(), round_probe_count_.end(), 0);
  round_probes_.clear();
  round_posts_.clear();
  for (auto& v : probed_this_round_) v = bits::BitVector(objects_);
  for (auto& v : posted_) v = bits::BitVector(objects_);
  const support::MutexLock lock(mu_);
  violations_.clear();
}

}  // namespace tmwia::billboard
