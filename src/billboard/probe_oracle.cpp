#include "tmwia/billboard/probe_oracle.hpp"

#include "tmwia/billboard/protocol_auditor.hpp"
#include "tmwia/obs/flight_recorder.hpp"
#include "tmwia/obs/metrics.hpp"

// Audit hooks compile to nothing when TMWIA_AUDIT is 0; with hooks
// compiled in but no auditor attached the cost is one pointer test.
#if TMWIA_AUDIT
#define TMWIA_AUDIT_HOOK(call)                      \
  do {                                              \
    if (auditor_ != nullptr) auditor_->call;        \
  } while (0)
#else
#define TMWIA_AUDIT_HOOK(call) \
  do {                         \
  } while (0)
#endif

namespace tmwia::billboard {
namespace {

// Only the *rare* fault paths carry per-event counters; the probe()
// success path stays uninstrumented (its cost is a couple of relaxed
// atomics — a counter there would be a measurable fraction of it).
// Aggregate probe totals are exported as gauges at serial points by
// the callers (core entry points, Session) from the oracle's own
// per-player ledgers.
struct OracleMetrics {
  obs::MetricsRegistry::Counter crashes =
      obs::MetricsRegistry::global().counter("oracle.probe_crashes");
  obs::MetricsRegistry::Counter failures =
      obs::MetricsRegistry::global().counter("oracle.probe_failures");
  obs::MetricsRegistry::Counter retries =
      obs::MetricsRegistry::global().counter("oracle.retries");
  obs::MetricsRegistry::Counter degraded =
      obs::MetricsRegistry::global().counter("oracle.degraded");
  obs::MetricsRegistry::Counter fallback_reads =
      obs::MetricsRegistry::global().counter("oracle.fallback_reads");
};

const OracleMetrics& oracle_metrics() {
  static const OracleMetrics m;
  return m;
}

}  // namespace

ProbeOracle::ProbeOracle(const matrix::PreferenceMatrix& truth, NoiseModel noise)
    : truth_(&truth),
      noise_(noise),
      invocations_(truth.players()),
      charged_(truth.players()),
      probed_(truth.players(), bits::BitVector(truth.objects())),
      values_(truth.players(), bits::BitVector(truth.objects())) {}

bool ProbeOracle::probe_slow(PlayerId p, ObjectId o) {
  if (p >= players() || o >= objects()) {
    throw std::out_of_range("ProbeOracle::probe: player/object out of range");
  }
  if (injector_ != nullptr) {
    switch (injector_->on_probe_attempt(p)) {
      case faults::FaultInjector::Attempt::kCrashed:
        oracle_metrics().crashes.inc();
        if (auto* rec = obs::recorder()) rec->crashed(p);
        throw faults::PlayerCrashedError(p);
      case faults::FaultInjector::Attempt::kFail: {
        // The probe was sent and the round spent; only the result is
        // lost, so the retry shows up in the invocation accounting.
        const auto failed_inv = bump(invocations_[p]);
        TMWIA_AUDIT_HOOK(on_probe_attempt(p));
        oracle_metrics().failures.inc();
        if (auto* rec = obs::recorder()) rec->probe_failed(p, o, failed_inv);
        throw faults::ProbeFailedError(p, o);
      }
      case faults::FaultInjector::Attempt::kOk:
        break;
    }
  }
  const auto inv = bump(invocations_[p]);
  TMWIA_AUDIT_HOOK(on_probe_attempt(p));
  if (!probed_[p].get(o)) {
    bump(charged_[p]);
    probed_[p].set(o, true);
  }
  const bool value = noisy_read(p, o, inv);
  values_[p].set(o, value);
  TMWIA_AUDIT_HOOK(on_probe(p, o));
  if (auto* rec = obs::recorder()) rec->probe(p, o, value, inv);
  return value;
}

bool ProbeOracle::fallback_read(PlayerId p, ObjectId o) const {
  return probed_[p].get(o) ? values_[p].get(o) : false;
}

bool ProbeOracle::probe_resilient_slow(PlayerId p, ObjectId o) {
  if (injector_->is_failed(p)) {
    injector_->note_fallback_read(p);
    oracle_metrics().fallback_reads.inc();
    return fallback_read(p, o);
  }
  const std::size_t budget = injector_->plan().retry_budget;
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      return probe(p, o);
    } catch (const faults::ProbeFailedError&) {
      if (attempt >= budget) break;  // budget exhausted: degrade
      injector_->note_retry(p);
      oracle_metrics().retries.inc();
    } catch (const faults::PlayerCrashedError&) {
      break;  // crash-stop: no point retrying
    }
  }
  if (!injector_->is_down(p)) {
    injector_->mark_degraded(p);
    oracle_metrics().degraded.inc();
    if (auto* rec = obs::recorder()) rec->degraded(p);
  }
  injector_->note_fallback_read(p);
  oracle_metrics().fallback_reads.inc();
  return fallback_read(p, o);
}

bool ProbeOracle::is_probed(PlayerId p, ObjectId o) const { return probed_[p].get(o); }

bool ProbeOracle::probed_value(PlayerId p, ObjectId o) const {
  if (!probed_[p].get(o)) {
    throw std::logic_error("ProbeOracle::probed_value: entry was never probed");
  }
  TMWIA_AUDIT_HOOK(on_read(p, o));
  return values_[p].get(o);
}

std::uint64_t ProbeOracle::total_invocations() const {
  std::uint64_t t = 0;
  for (const auto& c : invocations_) t += c.load(std::memory_order_relaxed);
  return t;
}

std::uint64_t ProbeOracle::total_charged() const {
  std::uint64_t t = 0;
  for (const auto& c : charged_) t += c.load(std::memory_order_relaxed);
  return t;
}

std::uint64_t ProbeOracle::max_invocations() const {
  std::uint64_t mx = 0;
  for (const auto& c : invocations_) {
    mx = std::max(mx, c.load(std::memory_order_relaxed));
  }
  return mx;
}

std::vector<std::uint64_t> ProbeOracle::snapshot() const {
  std::vector<std::uint64_t> s(players());
  for (std::size_t p = 0; p < players(); ++p) {
    s[p] = invocations_[p].load(std::memory_order_relaxed);
  }
  return s;
}

std::uint64_t ProbeOracle::rounds_since(const std::vector<std::uint64_t>& before) const {
  std::uint64_t mx = 0;
  for (std::size_t p = 0; p < players(); ++p) {
    mx = std::max(mx, invocations_[p].load(std::memory_order_relaxed) - before[p]);
  }
  return mx;
}

ProbeOracle::Ledger ProbeOracle::export_ledger() const {
  Ledger ledger;
  ledger.invocations.resize(players());
  ledger.charged.resize(players());
  for (std::size_t p = 0; p < players(); ++p) {
    ledger.invocations[p] = invocations_[p].load(std::memory_order_relaxed);
    ledger.charged[p] = charged_[p].load(std::memory_order_relaxed);
  }
  ledger.probed = probed_;
  ledger.values = values_;
  return ledger;
}

void ProbeOracle::restore_ledger(const Ledger& ledger) {
  if (ledger.invocations.size() != players() || ledger.charged.size() != players() ||
      ledger.probed.size() != players() || ledger.values.size() != players()) {
    throw std::invalid_argument("ProbeOracle::restore_ledger: player count mismatch");
  }
  for (const auto& row : ledger.probed) {
    if (row.size() != objects()) {
      throw std::invalid_argument("ProbeOracle::restore_ledger: object count mismatch");
    }
  }
  for (std::size_t p = 0; p < players(); ++p) {
    invocations_[p].store(ledger.invocations[p], std::memory_order_relaxed);
    charged_[p].store(ledger.charged[p], std::memory_order_relaxed);
  }
  probed_ = ledger.probed;
  values_ = ledger.values;
}

}  // namespace tmwia::billboard
