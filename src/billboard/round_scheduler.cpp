#include "tmwia/billboard/round_scheduler.hpp"

#include <stdexcept>

namespace tmwia::billboard {

RoundScheduler::RoundScheduler(ProbeOracle& oracle)
    : oracle_(&oracle),
      posted_(oracle.players(), bits::BitVector(oracle.objects())) {}

ScheduleResult RoundScheduler::run(std::vector<std::unique_ptr<PlayerStrategy>>& strategies,
                                   std::size_t max_rounds) {
  if (strategies.size() != oracle_->players()) {
    throw std::invalid_argument("RoundScheduler::run: one strategy slot per player");
  }

  ScheduleResult res;
  struct Pending {
    PlayerId p;
    ObjectId o;
  };
  std::vector<Pending> this_round;
  std::vector<std::pair<PlayerId, PendingPost>> vector_posts;

  for (std::size_t round = 0; round < max_rounds; ++round) {
    const RoundView view(*oracle_, board_, posted_, round);

    bool any_active = false;
    this_round.clear();
    vector_posts.clear();
    for (PlayerId p = 0; p < strategies.size(); ++p) {
      auto& s = strategies[p];
      if (!s || s->done()) continue;
      any_active = true;
      const auto choice = s->next_probe(view);
      if (choice.has_value()) {
        // Probe immediately (the value is private to the player this
        // round); defer the public posting to the end of the round so
        // peers cannot read it early.
        const bool value = oracle_->probe(p, *choice);
        s->on_result(*choice, value);
        this_round.push_back({p, *choice});
      } else {
        ++res.idle_probes;
      }
      for (auto& post : s->posts()) {
        vector_posts.emplace_back(p, std::move(post));
      }
    }

    if (!any_active) {
      res.all_done = true;
      res.rounds = round;
      return res;
    }
    ++res.rounds;

    for (const auto& [p, o] : this_round) {
      posted_[p].set(o, true);
    }
    for (auto& [p, post] : vector_posts) {
      board_.post(post.channel, p, post.vec);
    }
  }

  res.all_done = true;
  for (const auto& s : strategies) {
    if (s && !s->done()) {
      res.all_done = false;
      break;
    }
  }
  return res;
}

}  // namespace tmwia::billboard
