#include "tmwia/billboard/round_scheduler.hpp"

#include <stdexcept>

#include "tmwia/billboard/protocol_auditor.hpp"
#include "tmwia/obs/flight_recorder.hpp"
#include "tmwia/obs/metrics.hpp"
#include "tmwia/obs/profile.hpp"
#include "tmwia/obs/trace.hpp"

namespace tmwia::billboard {
namespace {

struct SchedulerMetrics {
  obs::MetricsRegistry::Counter rounds =
      obs::MetricsRegistry::global().counter("scheduler.rounds");
  obs::MetricsRegistry::Counter crash_skips =
      obs::MetricsRegistry::global().counter("scheduler.crash_skips");
  obs::MetricsRegistry::Counter idle =
      obs::MetricsRegistry::global().counter("scheduler.idle_probes");
  obs::MetricsRegistry::Counter posts_dropped =
      obs::MetricsRegistry::global().counter("scheduler.posts_dropped");
  obs::MetricsRegistry::Counter posts_delayed =
      obs::MetricsRegistry::global().counter("scheduler.posts_delayed");
  obs::MetricsRegistry::Counter strategy_exceptions =
      obs::MetricsRegistry::global().counter("scheduler.strategy_exceptions");
  obs::MetricsRegistry::Histogram active_players = obs::MetricsRegistry::global().histogram(
      "scheduler.active_players", obs::MetricsRegistry::pow2_bounds(24));
};

const SchedulerMetrics& scheduler_metrics() {
  static const SchedulerMetrics m;
  return m;
}

}  // namespace

RoundScheduler::RoundScheduler(ProbeOracle& oracle)
    : oracle_(&oracle),
      posted_(oracle.players(), bits::BitVector(oracle.objects())) {}

ScheduleResult RoundScheduler::run(std::vector<std::unique_ptr<PlayerStrategy>>& strategies,
                                   std::size_t max_rounds) {
  if (strategies.size() != oracle_->players()) {
    throw std::invalid_argument("RoundScheduler::run: one strategy slot per player");
  }

  auto* injector = oracle_->fault_injector();
#if TMWIA_AUDIT
  auto* auditor = oracle_->auditor();
#endif
  const auto& metrics = scheduler_metrics();
  obs::Span span(obs::tracer(), "scheduler.run",
                 {{"players", strategies.size()}, {"max_rounds", max_rounds}});
  auto* rec = obs::recorder();
  const auto inv_before = oracle_->snapshot();
  const auto total_before = oracle_->total_invocations();
  if (rec != nullptr) {
    rec->run_begin("scheduler", 0.0, oracle_->players(), oracle_->objects());
  }

  ScheduleResult res;
  struct Pending {
    PlayerId p;
    ObjectId o;
  };
  struct DelayedPost {
    std::size_t due_round;
    PlayerId p;
    PendingPost post;
  };
  std::vector<Pending> this_round;
  std::vector<std::pair<PlayerId, PendingPost>> vector_posts;
  std::vector<DelayedPost> delayed;
  std::vector<std::uint8_t> threw(strategies.size(), 0);
  // Previous round's down set, for crash/recover *transition* events
  // (the injector exposes only the current state).
  std::vector<std::uint8_t> was_down(strategies.size(), 0);

  // Rounds are numbered from start_round_ (0 for a fresh scheduler) so
  // repeated run() calls share one monotone round clock; res.rounds
  // stays relative to this call.
  const std::size_t start = start_round_;
  std::size_t round = start;
  for (; round < start + max_rounds; ++round) {
#if TMWIA_AUDIT
    // The auditor's round clock brackets everything players do this
    // round (probes, billboard reads, result posts).
    if (auditor != nullptr) auditor->begin_round(round);
#endif
    if (rec != nullptr) rec->round_begin(round);
    if (injector != nullptr) {
      injector->begin_round(round);
      if (rec != nullptr || obs::tracer() != nullptr) {
        for (PlayerId p = 0; p < strategies.size(); ++p) {
          const bool down = injector->is_down(p);
          if (down == (was_down[p] != 0)) continue;
          const char* what = down ? "scheduler.crash" : "scheduler.recover";
          if (auto* tr = obs::tracer()) {
            tr->event(what, {{"round", static_cast<std::uint64_t>(round)},
                             {"player", static_cast<std::uint64_t>(p)}});
          }
          if (rec != nullptr) {
            rec->fault(down ? obs::RecorderEvent::Kind::kCrash
                            : obs::RecorderEvent::Kind::kRecover,
                       round, static_cast<std::uint32_t>(p));
          }
          was_down[p] = down ? 1 : 0;
        }
      }
      // Delayed posts come due: publish before the view is built, so
      // they are visible exactly `delay` rounds late.
      for (auto it = delayed.begin(); it != delayed.end();) {
        if (it->due_round <= round) {
          board_.post(it->post.channel, it->p, it->post.vec);
          it = delayed.erase(it);
        } else {
          ++it;
        }
      }
    }

    const RoundView view(*oracle_, board_, posted_, round);

    bool any_active = false;
    std::size_t active_players = 0;
    this_round.clear();
    vector_posts.clear();
    for (PlayerId p = 0; p < strategies.size(); ++p) {
      auto& s = strategies[p];
      if (!s || threw[p] != 0 || s->done()) continue;
      if (injector != nullptr && injector->is_down(p)) {
        ++res.crash_skips;
        metrics.crash_skips.inc();
        // Only a player that will come back keeps the run alive.
        if (injector->may_recover(p)) any_active = true;
        continue;
      }
      any_active = true;
      ++active_players;
      try {
        const auto choice = s->next_probe(view);
        if (choice.has_value()) {
          // Probe immediately (the value is private to the player this
          // round); defer the public posting to the end of the round so
          // peers cannot read it early. With faults, retry transient
          // failures within the round up to the plan's budget — every
          // attempt is charged, so retry cost lands in the accounting.
          bool have_value = false;
          bool value = false;
          const std::size_t budget = injector != nullptr ? injector->plan().retry_budget : 0;
          for (std::size_t attempt = 0;; ++attempt) {
            try {
              value = oracle_->probe(p, *choice);
              have_value = true;
              break;
            } catch (const faults::ProbeFailedError&) {
              ++res.probe_failures;
              if (attempt >= budget) break;
              injector->note_retry(p);
            } catch (const faults::PlayerCrashedError&) {
              break;  // crashed mid-round: result lost, player down
            }
          }
          if (have_value) {
            s->on_result(*choice, value);
            this_round.push_back({p, *choice});
          }
        } else {
          ++res.idle_probes;
          metrics.idle.inc();
        }
        for (auto& post : s->posts()) {
          if (injector != nullptr) {
            if (injector->post_lost(p, faults::FaultInjector::channel_tag(post.channel))) {
              injector->note_post_dropped();
              ++res.posts_dropped;
              metrics.posts_dropped.inc();
              if (rec != nullptr) {
                rec->fault(obs::RecorderEvent::Kind::kPostDropped, round,
                           static_cast<std::uint32_t>(p));
              }
              continue;
            }
            if (const auto delay = injector->delay_for_post(p); delay > 0) {
              ++res.posts_delayed;
              metrics.posts_delayed.inc();
              if (rec != nullptr) {
                rec->fault(obs::RecorderEvent::Kind::kPostDelayed, round,
                           static_cast<std::uint32_t>(p), round + delay);
              }
              delayed.push_back({round + static_cast<std::size_t>(delay), p, std::move(post)});
              continue;
            }
          }
          vector_posts.emplace_back(p, std::move(post));
        }
      } catch (...) {
        // A buggy strategy must not take the round down with it: mark
        // it failed and keep driving everyone else.
        threw[p] = 1;
        res.failed_strategies.push_back(p);
        metrics.strategy_exceptions.inc();
      }
    }

    if (!any_active) {
      res.rounds = round - start;
#if TMWIA_AUDIT
      if (auditor != nullptr) auditor->end_round();
#endif
      if (rec != nullptr) rec->round_end(round, 0, 0);
      ++round;  // this round was touched (auditor/recorder brackets ran)
      break;
    }
    ++res.rounds;
    metrics.rounds.inc();
    obs::profile_cost(obs::Cost::kRounds, 1);
    metrics.active_players.observe(active_players);

    for (const auto& [p, o] : this_round) {
      posted_[p].set(o, true);
#if TMWIA_AUDIT
      if (auditor != nullptr) auditor->on_post(p, o);
#endif
      if (rec != nullptr) {
        rec->post(round, static_cast<std::uint32_t>(p), static_cast<std::uint32_t>(o));
      }
    }
    for (auto& [p, post] : vector_posts) {
      board_.post(post.channel, p, post.vec);
    }
#if TMWIA_AUDIT
    if (auditor != nullptr) auditor->end_round();
#endif
    if (rec != nullptr) rec->round_end(round, active_players, this_round.size());
  }

  start_round_ = round;

  // Never-published delayed posts should not vanish silently.
  for (auto& d : delayed) board_.post(d.post.channel, d.p, d.post.vec);

  res.all_done = true;
  for (PlayerId p = 0; p < strategies.size(); ++p) {
    const auto& s = strategies[p];
    if ((s && !s->done()) || threw[p] != 0) {
      res.all_done = false;
      break;
    }
  }
  if (rec != nullptr) {
    // Lockstep-equivalent totals (oracle deltas, not loop iterations),
    // so `tmwia_cli replay` can verify them against the event stream.
    rec->run_end("scheduler", oracle_->rounds_since(inv_before),
                 oracle_->total_invocations() - total_before);
  }
  span.end({{"rounds", res.rounds}, {"all_done", res.all_done ? 1 : 0}});
  return res;
}

}  // namespace tmwia::billboard
