#include "tmwia/obs/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <stdexcept>

namespace tmwia::obs {
namespace {

/// Registries get process-unique ids so the thread-local shard cache
/// can never confuse a new registry allocated at a recycled address.
// tmwia-lint: allow(nonconst-global) registered singleton: monotone id source
std::atomic<std::uint64_t> g_next_registry_id{1};

struct TlsShardCache {
  std::uint64_t registry_id = 0;
  void* shard = nullptr;
};
thread_local TlsShardCache t_shard_cache;

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_u64(std::string& out, std::uint64_t v) { out += std::to_string(v); }

void append_f64(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// Shard

MetricsRegistry::Shard::~Shard() {
  for (auto& c : chunks) delete c.load(std::memory_order_relaxed);
}

void MetricsRegistry::Shard::add(std::size_t slot, std::uint64_t v) {
  Chunk* c = chunks[slot >> kChunkBits].load(std::memory_order_acquire);
  if (c == nullptr) c = grow(slot >> kChunkBits);
  auto& s = c->slots[slot & (kChunkSlots - 1)];
  // Owner-thread-only writes: a plain load+store (no RMW) is enough
  // and compiles to two movs.
  s.store(s.load(std::memory_order_relaxed) + v, std::memory_order_relaxed);
}

MetricsRegistry::Chunk* MetricsRegistry::Shard::grow(std::size_t chunk_index) {
  auto* fresh = new Chunk();
  Chunk* expected = nullptr;
  if (!chunks[chunk_index].compare_exchange_strong(expected, fresh, std::memory_order_acq_rel)) {
    delete fresh;  // lost the (theoretical) race; owner-only writes make this unreachable
    return expected;
  }
  return fresh;
}

// ---------------------------------------------------------------------------
// MetricsRegistry

MetricsRegistry::MetricsRegistry(bool enabled)
    : enabled_(enabled), id_(g_next_registry_id.fetch_add(1, std::memory_order_relaxed)) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Shard& MetricsRegistry::local_shard() {
  if (t_shard_cache.registry_id == id_ && t_shard_cache.shard != nullptr) {
    return *static_cast<Shard*>(t_shard_cache.shard);
  }
  Shard& s = attach_thread();
  t_shard_cache = {id_, &s};
  return s;
}

MetricsRegistry::Shard& MetricsRegistry::attach_thread() {
  support::MutexLock lk(mu_);
  shards_.push_back(std::make_unique<Shard>());
  return *shards_.back();
}

MetricsRegistry::Counter MetricsRegistry::counter(std::string_view name) {
  support::MutexLock lk(mu_);
  auto it = names_.find(name);
  if (it == names_.end()) {
    if (next_slot_ >= kMaxChunks * kChunkSlots) {
      throw std::length_error("MetricsRegistry: slot space exhausted");
    }
    MetricInfo info{Kind::kCounter, next_slot_, 1, nullptr};
    ++next_slot_;
    it = names_.emplace(std::string(name), std::move(info)).first;
  } else if (it->second.kind != Kind::kCounter) {
    throw std::invalid_argument("MetricsRegistry: '" + std::string(name) +
                                "' is not a counter");
  }
  return Counter(this, it->second.slot);
}

MetricsRegistry::Histogram MetricsRegistry::histogram(std::string_view name,
                                                      std::vector<std::uint64_t> bounds) {
  if (bounds.empty() || !std::is_sorted(bounds.begin(), bounds.end()) ||
      std::adjacent_find(bounds.begin(), bounds.end()) != bounds.end()) {
    throw std::invalid_argument(
        "MetricsRegistry: histogram bounds must be non-empty and strictly increasing");
  }
  support::MutexLock lk(mu_);
  auto it = names_.find(name);
  if (it == names_.end()) {
    const auto slot_count = static_cast<std::uint32_t>(bounds.size() + 2);
    if (next_slot_ + slot_count > kMaxChunks * kChunkSlots) {
      throw std::length_error("MetricsRegistry: slot space exhausted");
    }
    MetricInfo info{Kind::kHistogram, next_slot_, slot_count,
                    std::make_unique<std::vector<std::uint64_t>>(std::move(bounds))};
    next_slot_ += slot_count;
    it = names_.emplace(std::string(name), std::move(info)).first;
  } else {
    if (it->second.kind != Kind::kHistogram) {
      throw std::invalid_argument("MetricsRegistry: '" + std::string(name) +
                                  "' is not a histogram");
    }
    if (*it->second.bounds != bounds) {
      throw std::invalid_argument("MetricsRegistry: histogram '" + std::string(name) +
                                  "' re-registered with different bounds");
    }
  }
  return Histogram(this, it->second.slot, it->second.bounds.get());
}

std::vector<std::uint64_t> MetricsRegistry::pow2_bounds(std::size_t k) {
  std::vector<std::uint64_t> b;
  b.reserve(k);
  for (std::size_t i = 0; i < k; ++i) b.push_back(std::uint64_t{1} << i);
  return b;
}

void MetricsRegistry::Histogram::observe(std::uint64_t v) const {
  if (reg_ == nullptr || !reg_->enabled()) return;
  const auto& bounds = *bounds_;
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), v);
  const auto bucket = static_cast<std::size_t>(it - bounds.begin());
  auto& shard = reg_->local_shard();
  shard.add(base_ + bucket, 1);
  shard.add(base_ + bounds.size() + 1, v);  // running sum slot
}

void MetricsRegistry::set_gauge(std::string_view name, std::int64_t value) {
  support::MutexLock lk(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<std::atomic<std::int64_t>>(0))
             .first;
  }
  it->second->store(value, std::memory_order_relaxed);
}

void MetricsRegistry::add_gauge(std::string_view name, std::int64_t delta) {
  support::MutexLock lk(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<std::atomic<std::int64_t>>(0))
             .first;
  }
  it->second->fetch_add(delta, std::memory_order_relaxed);
}

Snapshot MetricsRegistry::snapshot() const {
  support::MutexLock lk(mu_);
  Snapshot snap;
  auto slot_total = [&](std::uint32_t slot) {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      const Chunk* c = shard->chunks[slot >> kChunkBits].load(std::memory_order_acquire);
      if (c != nullptr) total += c->slots[slot & (kChunkSlots - 1)].load(std::memory_order_relaxed);
    }
    return total;
  };
  for (const auto& [name, info] : names_) {
    if (info.kind == Kind::kCounter) {
      snap.counters.emplace(name, slot_total(info.slot));
    } else {
      HistogramData h;
      h.bounds = *info.bounds;
      h.buckets.resize(info.bounds->size() + 1);
      for (std::size_t b = 0; b < h.buckets.size(); ++b) {
        h.buckets[b] = slot_total(info.slot + static_cast<std::uint32_t>(b));
      }
      h.sum = slot_total(info.slot + static_cast<std::uint32_t>(info.bounds->size()) + 1);
      for (auto c : h.buckets) h.count += c;
      snap.histograms.emplace(name, std::move(h));
    }
  }
  for (const auto& [name, cell] : gauges_) {
    snap.gauges.emplace(name, cell->load(std::memory_order_relaxed));
  }
  return snap;
}

void MetricsRegistry::reset() {
  support::MutexLock lk(mu_);
  for (const auto& shard : shards_) {
    for (auto& cp : shard->chunks) {
      Chunk* c = cp.load(std::memory_order_acquire);
      if (c == nullptr) continue;
      for (auto& s : c->slots) s.store(0, std::memory_order_relaxed);
    }
  }
  for (const auto& [name, cell] : gauges_) cell->store(0, std::memory_order_relaxed);
}

void MetricsRegistry::restore(const Snapshot& snap) {
  reset();
  // Registration is idempotent and validates kind/bounds agreement, so
  // restoring over live handles is safe; the loads land in this
  // thread's shard and merge like any other writer's.
  for (const auto& [name, v] : snap.counters) {
    const Counter c = counter(name);
    if (v != 0) slot_add(c.slot_, v);
  }
  for (const auto& [name, h] : snap.histograms) {
    const Histogram hist = histogram(name, h.bounds);
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] != 0) {
        slot_add(hist.base_ + static_cast<std::uint32_t>(b), h.buckets[b]);
      }
    }
    if (h.sum != 0) {
      slot_add(hist.base_ + static_cast<std::uint32_t>(h.bounds.size()) + 1, h.sum);
    }
  }
  for (const auto& [name, v] : snap.gauges) set_gauge(name, v);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry reg(/*enabled=*/false);
  return reg;
}

// ---------------------------------------------------------------------------
// Snapshot

double HistogramData::percentile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const double prev = static_cast<double>(cum);
    cum += buckets[i];
    if (static_cast<double>(cum) < target) continue;
    if (i >= bounds.size()) {
      // Overflow bucket: unbounded above, clamp to the last edge.
      return static_cast<double>(bounds.back());
    }
    const double lower = i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
    const double upper = static_cast<double>(bounds[i]);
    const double frac = (target - prev) / static_cast<double>(buckets[i]);
    return lower + (upper - lower) * frac;
  }
  return bounds.empty() ? 0.0 : static_cast<double>(bounds.back());
}

std::uint64_t Snapshot::counter(const std::string& name) const {
  const auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

std::int64_t Snapshot::gauge(const std::string& name) const {
  const auto it = gauges.find(name);
  return it == gauges.end() ? 0 : it->second;
}

std::string Snapshot::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, name);
    out.push_back(':');
    append_u64(out, v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, name);
    out.push_back(':');
    out += std::to_string(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, name);
    out += ":{\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i != 0) out.push_back(',');
      append_u64(out, h.bounds[i]);
    }
    out += "],\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i != 0) out.push_back(',');
      append_u64(out, h.buckets[i]);
    }
    out += "],\"sum\":";
    append_u64(out, h.sum);
    out += ",\"count\":";
    append_u64(out, h.count);
    out += ",\"p50\":";
    append_f64(out, h.percentile(0.50));
    out += ",\"p95\":";
    append_f64(out, h.percentile(0.95));
    out += ",\"p99\":";
    append_f64(out, h.percentile(0.99));
    out.push_back('}');
  }
  out += "}}";
  return out;
}

}  // namespace tmwia::obs
