// SLO watchdog: rolling-window evaluation of declared service-level
// objectives for the serving path.
//
// The operator declares objectives as a spec string
// ("p99_us=5000,staleness=4,degraded=0,audit=0,window=512"); absent
// keys leave that objective disabled. The watchdog keeps the last
// `window` requests (latency, cache staleness, degraded flag) in a
// ring plus a cumulative audit-violation count, and evaluate() checks
// every enabled objective against the current window:
//
//   p99_us     p99 request latency (exact order statistic over the
//              window, not a bucketed estimate) must be <= threshold
//   staleness  max epochs-behind served in the window must be <=
//   degraded   degraded responses in the window must be <=
//   audit      cumulative protocol-audit violations must be <=
//
// Each evaluation is level-triggered: every objective out of bounds
// yields one SloAlert (the telemetry stream writes these as
// {"kind":"alert",...} records). report() summarizes worst observed
// values and breach counts; breached() is sticky — once any objective
// has ever alerted, the serve session exits with the SLO-breach code.
//
// Thread-safety: one mutex guards everything; observers are request
// threads, evaluate()/report() run on the telemetry tick. The
// watchdog is judgment, not attribution — determinism of the
// *decision* follows from the deterministic request stream only for
// the logical objectives (staleness/degraded/audit); latency
// objectives are inherently wall-clock and belong to live operation,
// not to replay checks.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "tmwia/support/thread_annotations.hpp"

namespace tmwia::obs {

/// Parsed objective spec. Negative threshold = objective disabled.
struct SloSpec {
  double p99_us = -1.0;       ///< max p99 request latency, microseconds
  std::int64_t staleness = -1;  ///< max epochs-behind served
  std::int64_t degraded = -1;   ///< max degraded responses per window
  std::int64_t audit = -1;      ///< max cumulative audit violations
  std::size_t window = 256;     ///< rolling window, in requests

  /// Parse "key=value,..." with keys p99_us, staleness, degraded,
  /// audit, window. Absent keys keep the objective disabled. Throws
  /// std::invalid_argument on unknown keys or malformed values.
  static SloSpec parse(std::string_view spec);

  /// True when at least one objective is enabled.
  [[nodiscard]] bool any() const {
    return p99_us >= 0 || staleness >= 0 || degraded >= 0 || audit >= 0;
  }
};

/// One objective out of bounds at one evaluation.
struct SloAlert {
  std::uint64_t seq = 0;     ///< telemetry tick sequence that caught it
  std::string objective;     ///< "p99_us" | "staleness" | "degraded" | "audit"
  double observed = 0.0;
  double threshold = 0.0;
  std::uint64_t window_count = 0;  ///< requests in the window evaluated

  /// {"kind":"alert","seq":S,"objective":O,"observed":X,
  ///  "threshold":T,"window":N} — one line, byte-stable key order.
  [[nodiscard]] std::string to_json() const;
};

/// End-of-session verdict across all evaluations.
struct SloReport {
  struct Objective {
    std::string name;
    double threshold = 0.0;
    double worst = 0.0;        ///< worst value seen at any evaluation
    std::uint64_t breaches = 0;  ///< evaluations that alerted
    bool ok = true;
  };
  std::vector<Objective> objectives;  ///< enabled objectives, spec order
  std::uint64_t evaluations = 0;
  bool ok = true;  ///< false if any objective ever alerted

  /// {"ok":B,"evaluations":N,"objectives":[{"name":...,"threshold":T,
  ///  "worst":W,"breaches":B,"ok":B},...]} — one line.
  [[nodiscard]] std::string to_json() const;
};

class SloWatchdog {
 public:
  explicit SloWatchdog(SloSpec spec);

  SloWatchdog(const SloWatchdog&) = delete;
  SloWatchdog& operator=(const SloWatchdog&) = delete;

  [[nodiscard]] const SloSpec& spec() const { return spec_; }

  /// Record one served request (any request thread).
  void observe_request(std::uint64_t latency_us, std::uint64_t staleness_epochs,
                       bool degraded) TMWIA_EXCLUDES(mu_);

  /// Record protocol-audit violations (cumulative; pass the delta).
  void observe_audit_violations(std::uint64_t count) TMWIA_EXCLUDES(mu_);

  /// Check every enabled objective against the current window; returns
  /// one alert per objective out of bounds. `seq` tags the alerts with
  /// the telemetry tick that ran the evaluation.
  [[nodiscard]] std::vector<SloAlert> evaluate(std::uint64_t seq) TMWIA_EXCLUDES(mu_);

  /// True once any objective has ever alerted (sticky).
  [[nodiscard]] bool breached() const TMWIA_EXCLUDES(mu_);

  [[nodiscard]] SloReport report() const TMWIA_EXCLUDES(mu_);

 private:
  struct Sample {
    std::uint64_t latency_us = 0;
    std::uint64_t staleness = 0;
    bool degraded = false;
  };

  const SloSpec spec_;
  mutable support::Mutex mu_;
  std::vector<Sample> ring_ TMWIA_GUARDED_BY(mu_);
  std::size_t ring_next_ TMWIA_GUARDED_BY(mu_) = 0;
  std::uint64_t seen_ TMWIA_GUARDED_BY(mu_) = 0;
  std::uint64_t audit_violations_ TMWIA_GUARDED_BY(mu_) = 0;
  std::uint64_t evaluations_ TMWIA_GUARDED_BY(mu_) = 0;
  /// Worst-observed / breach-count cells, indexed like the spec order
  /// p99_us, staleness, degraded, audit.
  struct Track {
    double worst = 0.0;
    std::uint64_t breaches = 0;
  };
  Track tracks_[4] TMWIA_GUARDED_BY(mu_);
};

}  // namespace tmwia::obs
