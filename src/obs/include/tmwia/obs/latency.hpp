// WallTimer: the sanctioned wall-clock stopwatch for request-latency
// measurement.
//
// Wall time is an observability concern, so the clock lives in src/obs:
// the wall-clock lint rule confines <chrono> clock reads to this
// subsystem (and the bench harnesses), and everything else — the serve
// request handlers in particular — measures elapsed time through this
// facade. Latency readings feed MetricsRegistry histograms, which are
// exempt from the byte-determinism contract the algorithm metrics obey:
// a latency distribution is honest about being a property of the run,
// not of the seed.
#pragma once

#include <chrono>
#include <cstdint>

namespace tmwia::obs {

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  void reset() { start_ = std::chrono::steady_clock::now(); }

  /// Microseconds since construction / the last reset().
  [[nodiscard]] std::uint64_t elapsed_us() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace tmwia::obs
