// Deterministic cost-attribution profiler.
//
// A ProfileZone marks a scoped phase ("find_preferences", "select",
// "tenant:alpha"); zones nest into a tree via a thread-local current
// zone, and every logical cost deposited while a zone is current —
// probes charged, kernel bytes scanned, billboard rank queries, lock
// acquisitions, scheduler rounds — lands on that zone's node.
//
// Determinism contract (the reason this exists next to wall-clock
// profilers): all *logical* costs are pure functions of the workload,
// so the attribution tree is byte-identical across --threads and
// across kernel backends. The storage reuses the MetricsRegistry
// owner-write shard pattern — each writing thread deposits into a
// private shard of plain 64-bit slots (no RMW, no contention), and
// report() merges shards by summation, which commutes. Zone *ids* are
// interning-order dependent (racy across threads), so they never
// appear in any export: report() re-keys the tree by zone name, with
// children sorted by name.
//
// Wall time (Cost::kWallUs) is the one opt-in exception: when
// set_wall_sampling(true), each ProfileZone also deposits its
// elapsed microseconds. Wall costs are scheduling-dependent, so
// ProfileReport::to_json() omits them unless asked — determinism
// checks diff the default export.
//
// Cross-thread attribution: engine::parallel_for propagates the
// caller's current zone to pool workers (swap_current_zone), so costs
// from parallelized player loops attribute to the phase that spawned
// them, not to an anonymous worker root.
//
// The global() profiler starts DISABLED; a disabled profiler's
// deposit path is one relaxed load. Profiler state is process-local
// and NOT checkpointed: a resumed run's tree covers the resumed
// session only (metrics, by contrast, are spliced via
// MetricsRegistry::restore).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "tmwia/support/thread_annotations.hpp"

namespace tmwia::obs {

/// Logical cost axes recorded per zone. All except kWallUs are
/// workload-determined (byte-stable across threads/backends).
enum class Cost : std::uint8_t {
  kProbes = 0,       ///< oracle probes charged
  kKernelBytes = 1,  ///< logical bytes handed to distance kernels (vectors x words x 8)
  kRankQueries = 2,  ///< billboard tally/rank reads
  kLocks = 3,        ///< instrumented lock acquisitions (serve hot path)
  kRounds = 4,       ///< scheduler rounds driven
  kCalls = 5,        ///< zone entries (every ProfileZone deposits 1 on exit)
  kWallUs = 6,       ///< opt-in wall-time sampling, microseconds
  kCount = 7
};

inline constexpr std::size_t kCostCount = static_cast<std::size_t>(Cost::kCount);

/// Short stable key for each cost axis, used in JSON exports.
[[nodiscard]] std::string_view cost_name(Cost c);

/// One node of the merged attribution tree. Children are sorted by
/// name, so equal logical work yields byte-identical exports.
struct ProfileNode {
  std::string name;
  std::array<std::uint64_t, kCostCount> costs{};  ///< self costs (exclusive)
  std::vector<ProfileNode> children;

  [[nodiscard]] std::uint64_t cost(Cost c) const {
    return costs[static_cast<std::size_t>(c)];
  }
  /// Self cost plus all descendants'.
  [[nodiscard]] std::uint64_t total(Cost c) const;
};

/// Point-in-time merged attribution tree.
struct ProfileReport {
  ProfileNode root;  ///< name "root"; top-level zones are its children

  /// Nested one-line JSON: {"name":N,"costs":{axis:V,...},"children":
  /// [...]}. Only nonzero axes appear, in fixed axis order; wall_us is
  /// omitted unless include_wall (it breaks cross-thread byte
  /// stability). Byte-deterministic for equal logical work.
  [[nodiscard]] std::string to_json(bool include_wall = false) const;

  /// d3-flamegraph-style JSON over one axis: {"name":N,"value":self,
  /// "children":[...]}. `value` is the zone's self cost; stack totals
  /// are the sums down each path.
  [[nodiscard]] std::string flamegraph_json(Cost axis) const;
};

class Profiler {
  static constexpr std::size_t kChunkBits = 8;
  static constexpr std::size_t kChunkSlots = std::size_t{1} << kChunkBits;
  static constexpr std::size_t kMaxChunks = 64;  ///< 16384 slots / kCostCount zones

 public:
  using ZoneId = std::uint32_t;
  static constexpr ZoneId kRoot = 0;

  explicit Profiler(bool enabled = true);
  ~Profiler();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  [[nodiscard]] bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Opt-in wall-time sampling: every ProfileZone also deposits its
  /// elapsed microseconds (Cost::kWallUs). Off by default — wall costs
  /// are scheduling-dependent and excluded from determinism checks.
  [[nodiscard]] bool wall_sampling() const { return wall_.load(std::memory_order_relaxed); }
  void set_wall_sampling(bool on) { wall_.store(on, std::memory_order_relaxed); }

  /// Find-or-create the child zone `name` under `parent`. Idempotent;
  /// the id is stable for the profiler's lifetime. Ids are
  /// interning-order dependent — cache them, never export them.
  ZoneId intern(ZoneId parent, std::string_view name) TMWIA_EXCLUDES(mu_);

  /// Deposit `v` of axis `c` on `zone` (owner-write shard; no
  /// cross-thread contention). No-op while disabled.
  void add(ZoneId zone, Cost c, std::uint64_t v) {
    if (!enabled()) return;
    local_shard().add(zone * kCostCount + static_cast<std::size_t>(c), v);
  }

  /// Merge every shard into a name-keyed attribution tree (call at
  /// quiescent points).
  [[nodiscard]] ProfileReport report() const TMWIA_EXCLUDES(mu_);

  /// Zero every slot; interned zones and cached ids stay valid. Call
  /// at quiescent points only.
  void reset() TMWIA_EXCLUDES(mu_);

  /// The calling thread's current zone (kRoot when none is open).
  [[nodiscard]] static ZoneId current_zone();

  /// Install `zone` as the calling thread's current zone, returning
  /// the previous one. Used by ProfileZone and by parallel_for's
  /// ambient-zone propagation onto pool workers; always restore.
  static ZoneId swap_current_zone(ZoneId zone);

  /// Process-global profiler used by the library's built-in zones.
  /// Starts DISABLED; sinks (tmwia_cli --prof=/--flame=, serve
  /// telemetry) enable it.
  static Profiler& global();

 private:
  struct Chunk {
    std::array<std::atomic<std::uint64_t>, kChunkSlots> slots{};
  };
  /// One writer thread's private slot array — same owner-write shape
  /// as MetricsRegistry::Shard (plain load+store, atomic only so the
  /// merging reader is race-free).
  struct Shard {
    std::array<std::atomic<Chunk*>, kMaxChunks> chunks{};
    ~Shard();
    void add(std::size_t slot, std::uint64_t v);
    Chunk* grow(std::size_t chunk_index);
  };

  struct ZoneInfo {
    std::string name;
    ZoneId parent = kRoot;
  };

  Shard& local_shard();
  Shard& attach_thread() TMWIA_EXCLUDES(mu_);

  std::atomic<bool> enabled_;
  std::atomic<bool> wall_{false};
  std::uint64_t id_;  ///< process-unique; keys the thread-local shard cache
  /// Guards profiler *structure* (zone table, shard list); shard slot
  /// contents are owner-write atomics, deliberately unguarded.
  mutable support::Mutex mu_;
  std::vector<ZoneInfo> zones_ TMWIA_GUARDED_BY(mu_);
  std::map<std::pair<ZoneId, std::string>, ZoneId, std::less<>> ids_ TMWIA_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<Shard>> shards_ TMWIA_GUARDED_BY(mu_);
};

/// RAII scope marking `name` as the current zone on this thread.
/// Deposits Cost::kCalls 1 on exit (plus kWallUs when the profiler
/// samples wall time). The name-interning constructor takes the zone
/// lock once per *new* (parent, name) pair and a map lookup otherwise;
/// hot paths (serve requests) should pre-intern and use the ZoneId
/// constructor, which touches no lock at all.
class ProfileZone {
 public:
  /// Open the child zone `name` under the thread's current zone.
  explicit ProfileZone(std::string_view name, Profiler& prof = Profiler::global());

  /// Open a pre-interned zone (lock-free fast path).
  explicit ProfileZone(Profiler::ZoneId zone, Profiler& prof = Profiler::global());

  ~ProfileZone();

  ProfileZone(const ProfileZone&) = delete;
  ProfileZone& operator=(const ProfileZone&) = delete;

  /// Deposit on this zone explicitly (normally profile_cost suffices).
  void add(Cost c, std::uint64_t v) const { prof_.add(zone_, c, v); }

  [[nodiscard]] Profiler::ZoneId id() const { return zone_; }

 private:
  Profiler& prof_;
  Profiler::ZoneId zone_;
  Profiler::ZoneId parent_;
  bool active_;            ///< profiler was enabled at entry
  std::int64_t start_us_;  ///< wall-sampling start, -1 when off
};

/// Deposit `v` of axis `c` on the calling thread's current zone of the
/// global profiler. The library's instrumentation points call this;
/// with the profiler disabled it is one relaxed load.
inline void profile_cost(Cost c, std::uint64_t v) {
  Profiler& p = Profiler::global();
  if (p.enabled()) p.add(Profiler::current_zone(), c, v);
}

}  // namespace tmwia::obs
