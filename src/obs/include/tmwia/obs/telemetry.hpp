// TelemetryExporter: periodic live export of metrics + profiler state
// for the serving path.
//
// The service reports every request via observe_request(); every
// `every`-th request closes a *tick*. A tick appends to the JSONL
// stream at `path`:
//
//   {"kind":"snapshot","seq":S,"requests":N,"metrics":{...}
//    [,"profile":{...}]}          one per tick
//   {"kind":"exemplar","seq":S,"tenant":T,"op":O,"latency_us":L,
//    "staleness":E,"degraded":B}  top-K slowest requests of the tick
//   {"kind":"alert",...}          SLO objectives out of bounds (slo.hpp)
//
// and finish() appends the final {"kind":"slo_report",...} verdict.
// Alongside the stream, each tick rewrites `path`.prom — a
// Prometheus-style text exposition of the same snapshot (atomic
// tmp+rename swap, so a scraper never reads a torn file).
//
// Cadence is *count-based*, not timer-based: a replayed request
// stream produces the same number of snapshot records every run, so
// tests can assert on stream shape. (Record *contents* include
// latencies — only counts and key shape are replay-stable.)
//
// Tail exemplars: when a Tracer is attached, the top-K slowest
// requests of each tick also become "serve.exemplar" trace spans, so
// a flight log can be joined against the slow tail of live traffic.
//
// Thread-safety: one mutex serializes everything (request threads
// call observe_request; the closing thread calls finish). The serve
// request path pays one lock + vector push per request plus the full
// tick work every `every` requests — e18 gates the total overhead.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "tmwia/obs/metrics.hpp"
#include "tmwia/obs/profile.hpp"
#include "tmwia/obs/slo.hpp"
#include "tmwia/obs/trace.hpp"
#include "tmwia/support/thread_annotations.hpp"

namespace tmwia::obs {

struct TelemetryConfig {
  std::string path;               ///< JSONL stream; exposition lands at path + ".prom"
  std::size_t every = 64;         ///< requests per tick (>= 1)
  std::size_t exemplars = 4;      ///< slowest requests exported per tick
  bool write_exposition = true;   ///< rewrite path.prom each tick
  bool include_profile = true;    ///< embed profiler tree in snapshots (when enabled)
};

class TelemetryExporter {
 public:
  /// `registry` must outlive the exporter; `profiler`, `watchdog` and
  /// `tracer` are optional (nullptr = that facet off). Opens the
  /// stream immediately; throws std::runtime_error when the path
  /// cannot be opened.
  TelemetryExporter(TelemetryConfig cfg, MetricsRegistry& registry,
                    Profiler* profiler = nullptr, SloWatchdog* watchdog = nullptr,
                    Tracer* tracer = nullptr);
  ~TelemetryExporter();

  TelemetryExporter(const TelemetryExporter&) = delete;
  TelemetryExporter& operator=(const TelemetryExporter&) = delete;

  /// Record one served request; every `every`-th call runs a tick.
  void observe_request(std::string_view tenant, std::string_view op,
                       std::uint64_t latency_us, std::uint64_t staleness_epochs,
                       bool degraded) TMWIA_EXCLUDES(mu_);

  /// Force a tick now (exposed for shutdown and tests).
  void tick() TMWIA_EXCLUDES(mu_);

  /// Final tick over any unexported requests, then the slo_report
  /// record (when a watchdog is attached); flushes the stream.
  /// Idempotent; the destructor calls it.
  void finish() TMWIA_EXCLUDES(mu_);

  [[nodiscard]] std::uint64_t ticks() const TMWIA_EXCLUDES(mu_);
  [[nodiscard]] std::uint64_t records_written() const TMWIA_EXCLUDES(mu_);
  [[nodiscard]] std::uint64_t alerts_written() const TMWIA_EXCLUDES(mu_);

 private:
  struct Pending {
    std::string tenant;
    std::string op;
    std::uint64_t latency_us = 0;
    std::uint64_t staleness = 0;
    bool degraded = false;
  };

  void tick_locked() TMWIA_REQUIRES(mu_);
  void write_line_locked(const std::string& line) TMWIA_REQUIRES(mu_);
  void write_exposition_locked(const Snapshot& snap) TMWIA_REQUIRES(mu_);

  const TelemetryConfig cfg_;
  MetricsRegistry& registry_;
  Profiler* profiler_;
  SloWatchdog* watchdog_;
  Tracer* tracer_;

  mutable support::Mutex mu_;
  // tmwia-lint: allow(durable-write) streaming telemetry sink: append-only JSONL, torn tail tolerated by readers
  std::ofstream out_ TMWIA_GUARDED_BY(mu_);
  std::vector<Pending> window_ TMWIA_GUARDED_BY(mu_);
  std::uint64_t seq_ TMWIA_GUARDED_BY(mu_) = 0;
  std::uint64_t since_tick_ TMWIA_GUARDED_BY(mu_) = 0;
  std::uint64_t total_requests_ TMWIA_GUARDED_BY(mu_) = 0;
  std::uint64_t records_ TMWIA_GUARDED_BY(mu_) = 0;
  std::uint64_t alerts_ TMWIA_GUARDED_BY(mu_) = 0;
  bool finished_ TMWIA_GUARDED_BY(mu_) = false;
};

/// Render a metrics snapshot as Prometheus text exposition: names are
/// prefixed "tmwia_" with dots mapped to underscores; counters and
/// gauges become single samples, histograms the _bucket{le=...}/_sum/
/// _count triplet (cumulative buckets, closing with le="+Inf").
[[nodiscard]] std::string prometheus_exposition(const Snapshot& snap);

}  // namespace tmwia::obs
