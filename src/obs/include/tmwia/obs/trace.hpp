// Tracer: phase/round-scoped spans and point events emitted as JSONL.
//
// Every record carries a *logical clock* value `t` — a per-tracer
// monotone counter incremented once per record — instead of wall time,
// so a trace taken with the same seed and fault plan is byte-identical
// run-to-run and across `--threads` settings. Wall time can be opted
// into (`wall_time=true`) for profiling; it adds a `wall_us` field and
// forfeits byte-stability, which is why it is off by default and the
// determinism tests never enable it.
//
// Emission is mutex-serialized (one lock per record). Traces are meant
// for *serial control-flow points* — phase boundaries, round starts,
// guess outcomes — not per-probe hot paths; instrumented call sites in
// parallel player code must use MetricsRegistry counters instead, both
// for overhead and because interleaved span order would be
// nondeterministic.
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>
#include <variant>

#include "tmwia/support/thread_annotations.hpp"

namespace tmwia::obs {

/// One key/value attribute on a trace record. Integer types funnel
/// through a single constrained template constructor so brace-lists
/// like {"n", n} never hit int/uint32_t/size_t overload ambiguity.
struct Attr {
  std::string_view key;
  std::variant<std::int64_t, std::uint64_t, double, std::string_view> value;

  template <typename T, typename = std::enable_if_t<std::is_integral_v<T>>>
  Attr(std::string_view k, T v)
      : key(k), value(std::is_signed_v<T>
                          ? decltype(value){static_cast<std::int64_t>(v)}
                          : decltype(value){static_cast<std::uint64_t>(v)}) {}
  Attr(std::string_view k, double v) : key(k), value(v) {}
  Attr(std::string_view k, const char* v) : key(k), value(std::string_view(v)) {}
  Attr(std::string_view k, std::string_view v) : key(k), value(v) {}
};

using AttrList = std::initializer_list<Attr>;

class Tracer {
 public:
  /// Writes JSONL records to `out`. The stream must outlive the
  /// tracer. `wall_time=true` adds a wall_us field to every record
  /// (and breaks byte-determinism — keep it off for compared traces).
  explicit Tracer(std::ostream& out, bool wall_time = false);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Open a span; returns its id (>0) for end_span.
  std::uint64_t begin_span(std::string_view name, AttrList attrs = {});
  void end_span(std::uint64_t span_id, AttrList attrs = {});

  /// A point event (no duration).
  void event(std::string_view name, AttrList attrs = {});

  void flush();

 private:
  void emit(std::string_view kind, std::uint64_t span_id, std::string_view name,
            AttrList attrs);

  std::ostream& out_;     ///< written only under mu_ (references can't be guarded)
  bool wall_time_;        ///< immutable after construction
  support::Mutex mu_;     ///< serializes every record: clock tick + stream write
  std::uint64_t clock_ TMWIA_GUARDED_BY(mu_) = 0;
  std::uint64_t next_span_ TMWIA_GUARDED_BY(mu_) = 1;
};

/// RAII span over an optional tracer: a null tracer makes every
/// operation a no-op, so library code can trace unconditionally.
class Span {
 public:
  Span(Tracer* tracer, std::string_view name, AttrList attrs = {})
      : tracer_(tracer), id_(tracer ? tracer->begin_span(name, attrs) : 0) {}
  ~Span() { end(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Close early, optionally attaching result attributes.
  void end(AttrList attrs = {}) {
    if (tracer_ != nullptr) tracer_->end_span(id_, attrs);
    tracer_ = nullptr;
  }

 private:
  Tracer* tracer_;
  std::uint64_t id_;
};

/// Process-global tracer used by the library's built-in trace points.
/// Null (tracing off) until a sink installs one. The caller keeps
/// ownership and must clear it (set_tracer(nullptr)) before the tracer
/// dies.
Tracer* tracer();
void set_tracer(Tracer* t);

}  // namespace tmwia::obs
