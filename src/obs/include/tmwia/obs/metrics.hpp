// MetricsRegistry: low-overhead named counters, gauges and fixed-bucket
// histograms for the whole stack.
//
// Hot-path design: every writing thread owns a private *shard* of plain
// 64-bit slots; Counter::add / Histogram::observe touch only the local
// shard (owner-writes, no cross-thread cache-line contention), so the
// ThreadPool phases pay no synchronization for instrumentation. Reads
// (snapshot) merge all shards by summation, which is order-independent
// — the merged totals are identical regardless of how work was spread
// over threads. That is the determinism contract the benches rely on:
// same seed, different --threads, byte-identical snapshot JSON.
//
// Determinism rules for instrumented code:
//  * counters/histograms may be touched from parallel player code —
//    summation commutes;
//  * gauges are last-write-wins and must only be set from serial
//    (phase-boundary) code;
//  * snapshot()/reset() are meant for quiescent points (no instrumented
//    work in flight) — concurrent writes are not lost or corrupted, but
//    a mid-phase snapshot may catch a histogram between its bucket and
//    sum updates.
//
// The registry is disabled by default: a disabled registry's add paths
// are one relaxed atomic load (so always-on instrumentation in library
// code costs ~nothing until a sink asks for data).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "tmwia/support/thread_annotations.hpp"

namespace tmwia::obs {

/// Merged view of one histogram. `bounds` are inclusive upper bucket
/// edges; `buckets` has bounds.size() + 1 entries (the last is the
/// overflow bucket for values > bounds.back()).
struct HistogramData {
  std::vector<std::uint64_t> bounds;
  std::vector<std::uint64_t> buckets;
  std::uint64_t sum = 0;
  std::uint64_t count = 0;
  bool operator==(const HistogramData&) const = default;

  /// Estimated q-quantile (q in [0, 1]) by linear interpolation within
  /// the fixed buckets: observations in bucket i are assumed uniform
  /// over (lower edge, bounds[i]]. The overflow bucket has no upper
  /// edge, so estimates falling there clamp to bounds.back() — a
  /// deliberate *under*-estimate that a reader can detect by comparing
  /// against the overflow bucket count. Returns 0 for an empty
  /// histogram.
  [[nodiscard]] double percentile(double q) const;
};

/// A point-in-time merged view of a registry. std::map keeps names
/// sorted, so to_json() is byte-deterministic for equal contents.
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramData> histograms;

  bool operator==(const Snapshot&) const = default;

  /// Counter value, 0 when absent (missing == never touched).
  [[nodiscard]] std::uint64_t counter(const std::string& name) const;
  [[nodiscard]] std::int64_t gauge(const std::string& name) const;

  /// One-line JSON object: {"counters":{...},"gauges":{...},
  /// "histograms":{name:{"bounds":[...],"buckets":[...],"sum":S,
  /// "count":C}}}. Keys sorted, no whitespace — byte-stable.
  [[nodiscard]] std::string to_json() const;
};

class MetricsRegistry {
  static constexpr std::size_t kChunkBits = 8;
  static constexpr std::size_t kChunkSlots = std::size_t{1} << kChunkBits;
  static constexpr std::size_t kMaxChunks = 64;  ///< 16384 slots total

 public:
  /// Handle to a named counter. Cheap to copy; safe to cache in a
  /// function-local static. A default-constructed handle is a no-op.
  class Counter {
   public:
    Counter() = default;
    void add(std::uint64_t v) const {
      if (reg_ != nullptr && reg_->enabled()) reg_->slot_add(slot_, v);
    }
    void inc() const { add(1); }

   private:
    friend class MetricsRegistry;
    Counter(MetricsRegistry* reg, std::uint32_t slot) : reg_(reg), slot_(slot) {}
    MetricsRegistry* reg_ = nullptr;
    std::uint32_t slot_ = 0;
  };

  /// Handle to a named fixed-bucket histogram of integer values.
  class Histogram {
   public:
    Histogram() = default;
    void observe(std::uint64_t v) const;

   private:
    friend class MetricsRegistry;
    Histogram(MetricsRegistry* reg, std::uint32_t base, const std::vector<std::uint64_t>* bounds)
        : reg_(reg), base_(base), bounds_(bounds) {}
    MetricsRegistry* reg_ = nullptr;
    std::uint32_t base_ = 0;                          ///< first bucket slot
    const std::vector<std::uint64_t>* bounds_ = nullptr;  ///< owned by registry
  };

  explicit MetricsRegistry(bool enabled = true);
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Find-or-create the counter `name`. Registration is idempotent;
  /// re-registering a name of a different metric kind throws.
  Counter counter(std::string_view name);

  /// Find-or-create histogram `name` with the given inclusive upper
  /// bucket bounds (must be non-empty, strictly increasing). Bounds of
  /// an existing histogram must match exactly.
  Histogram histogram(std::string_view name, std::vector<std::uint64_t> bounds);

  /// Strictly-increasing power-of-two bounds 1, 2, 4, ..., 2^(k-1) —
  /// the default shape for size/cost distributions.
  static std::vector<std::uint64_t> pow2_bounds(std::size_t k);

  /// Gauges: registry-level last-write-wins cells. Only call from
  /// serial code if snapshot determinism matters.
  void set_gauge(std::string_view name, std::int64_t value);
  void add_gauge(std::string_view name, std::int64_t delta);

  /// Merge every shard into a Snapshot (call at quiescent points).
  [[nodiscard]] Snapshot snapshot() const;

  /// Zero every slot and gauge; registered names and handles stay
  /// valid. Call at quiescent points only.
  void reset();

  /// Reset, then re-register and re-load every metric in `snap` so a
  /// subsequent snapshot() equals `snap` exactly. Histogram bounds come
  /// from the snapshot; a name already registered with a different kind
  /// or bounds throws. Used by checkpoint resume to splice the metrics
  /// stream. Call at quiescent points only.
  void restore(const Snapshot& snap);

  /// Process-global registry used by the library's built-in
  /// instrumentation. Starts DISABLED; sinks (Session::metrics_sink,
  /// tmwia_cli --metrics=, bench --metrics=) enable it.
  static MetricsRegistry& global();

 private:
  struct Chunk {
    std::array<std::atomic<std::uint64_t>, kChunkSlots> slots{};
  };
  /// One writer thread's private slot array. Slots are atomics so the
  /// merging reader is race-free, but only the owner writes, with
  /// plain load+store (no RMW, no lock prefix).
  struct Shard {
    std::array<std::atomic<Chunk*>, kMaxChunks> chunks{};
    ~Shard();
    void add(std::size_t slot, std::uint64_t v);
    Chunk* grow(std::size_t chunk_index);
  };

  enum class Kind : std::uint8_t { kCounter, kHistogram };
  struct MetricInfo {
    Kind kind;
    std::uint32_t slot;       ///< first slot (counters use exactly one)
    std::uint32_t slot_count;
    std::unique_ptr<std::vector<std::uint64_t>> bounds;  ///< histograms only
  };

  friend class Counter;
  friend class Histogram;

  void slot_add(std::uint32_t slot, std::uint64_t v) { local_shard().add(slot, v); }
  Shard& local_shard();
  Shard& attach_thread() TMWIA_EXCLUDES(mu_);

  std::atomic<bool> enabled_;
  std::uint64_t id_;  ///< process-unique; keys the thread-local shard cache
  /// Guards registry *structure* (name table, shard list, gauge cells).
  /// Shard slot contents are deliberately NOT guarded: they are
  /// owner-write atomics (only the owning thread stores; snapshot sums
  /// them with atomic loads under mu_), the whole point of the
  /// contention-free hot path above.
  mutable support::Mutex mu_;
  std::map<std::string, MetricInfo, std::less<>> names_ TMWIA_GUARDED_BY(mu_);
  std::uint32_t next_slot_ TMWIA_GUARDED_BY(mu_) = 0;
  std::vector<std::unique_ptr<Shard>> shards_ TMWIA_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<std::atomic<std::int64_t>>, std::less<>> gauges_
      TMWIA_GUARDED_BY(mu_);
};

}  // namespace tmwia::obs
