// FlightRecorder: an event-sourced record of one run, deterministic
// enough to replay.
//
// The billboard model is temporal — one probe per player per lockstep
// round, quality only meaningful per phase — so the recorder captures
// the run as an ordered event stream: run/phase transitions of the
// Zero/Small/Large-Radius tower, scheduler rounds, every probe
// (player, object, result, invocation), result and vector posts, fault
// events, and per-phase summary records (cumulative cost plus max/mean
// discrepancy against the planted matrix when the harness installs an
// output evaluator — the library itself never sees the truth).
//
// Determinism contract (the same one MetricsRegistry and Tracer obey):
// records carry a per-recorder *logical clock*, never wall time, and
// the stream for a fixed seed and fault plan is byte-identical across
// `--threads`. Parallel player code cannot write to the sink directly
// — per-probe events are staged in per-player owner-write buffers
// (exactly the MetricsRegistry shard discipline: player p's events are
// appended only by the thread running player p) and drained in player
// order at the next *serial* emission (a phase boundary, a scheduler
// round, run end). Serial emissions therefore double as barriers; they
// must only be issued from serial code with no staged writers in
// flight, which the parallel_for join points guarantee.
//
// Memory is bounded: each player's stage holds at most `stage_cap`
// events; beyond that events are dropped and surfaced as an explicit
// `overflow` record at the next drain, so a truncated log says so
// instead of silently lying.
//
// Disabled recording is one relaxed atomic load per instrumented site
// (the process-global recorder slot, mirroring obs::tracer()), so the
// hooks stay compiled in everywhere at ~zero cost — the same fast-path
// budget the metrics layer is held to (bench/e11).
//
// Two wire formats behind one writer: JSONL (one object per record,
// fixed key order, jq-able) and a compact binary framing (magic
// "TMWIAFR1", then [kind u8][field mask u8][t u64][present fields]).
// read_recorder_log() sniffs the magic and parses either.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "tmwia/bits/bitvector.hpp"
#include "tmwia/support/thread_annotations.hpp"

namespace tmwia::obs {

enum class RecordFormat : std::uint8_t { kJsonl, kBinary };

/// One record of the flight log. Which fields are meaningful is
/// per-kind (see DESIGN.md section 10); `mask` says which are present.
struct RecorderEvent {
  enum class Kind : std::uint8_t {
    kRunBegin = 1,   ///< label=algo, x=alpha, a=players, b=objects
    kRunEnd = 2,     ///< label=algo, a=rounds, b=total probes (run deltas)
    kPhaseBegin = 3, ///< nested entry point: label=algo/branch, x=alpha, a=D
    kPhaseEnd = 4,   ///< label, a=rounds in phase, b=probes in phase
    kPhaseSummary = 5, ///< label, p=players, a=cum rounds, b=cum probes,
                       ///< x=max disc, y=mean disc (when evaluator set)
    kRoundBegin = 6, ///< round (scheduler lockstep)
    kRoundEnd = 7,   ///< round, a=active players, b=result posts
    kProbe = 8,      ///< p, o, a=value(0/1), b=invocation index
    kProbeFailed = 9,  ///< p, o, b=invocation index (charged, result lost)
    kPost = 10,        ///< round, p, o — result published at round end
    kVectorPost = 11,  ///< p, label=channel, a=vector hash, b=vector bits
    kCrash = 12,       ///< p (+round in scheduler mode)
    kRecover = 13,     ///< p, round
    kPostDropped = 14, ///< p, round
    kPostDelayed = 15, ///< p, round, a=due round
    kDegraded = 16,    ///< p abandoned probing (retry exhaustion)
    kOverflow = 17,    ///< p, a=events dropped since last drain
    kNote = 18,        ///< label, a, b — serial progress marks (drain points)
  };

  static constexpr std::uint8_t kHasRound = 1;
  static constexpr std::uint8_t kHasPlayer = 2;
  static constexpr std::uint8_t kHasObject = 4;
  static constexpr std::uint8_t kHasA = 8;
  static constexpr std::uint8_t kHasB = 16;
  static constexpr std::uint8_t kHasX = 32;
  static constexpr std::uint8_t kHasY = 64;
  static constexpr std::uint8_t kHasLabel = 128;

  Kind kind = Kind::kNote;
  std::uint8_t mask = 0;
  std::uint64_t t = 0;  ///< logical clock, assigned at emission
  std::uint64_t round = 0;
  std::uint32_t player = 0;
  std::uint32_t object = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  double x = 0.0;
  double y = 0.0;
  std::string label;

  [[nodiscard]] bool has(std::uint8_t bit) const { return (mask & bit) != 0; }
};

/// Stable wire name of an event kind ("probe", "run_begin", ...).
[[nodiscard]] const char* to_string(RecorderEvent::Kind kind);
/// Inverse of to_string; nullopt for unknown names.
[[nodiscard]] std::optional<RecorderEvent::Kind> kind_from_string(std::string_view name);

class FlightRecorder {
 public:
  /// Quality of a phase's outputs against truth only the harness holds.
  /// Distances are Hamming distances to the hidden preference rows.
  struct PhaseEval {
    double max_disc = -1.0;   ///< -1: no evaluator installed
    double mean_disc = -1.0;
  };
  using OutputEvaluator = std::function<PhaseEval(const std::vector<bits::BitVector>&)>;

  /// Writes records to `out` (which must outlive the recorder; open
  /// binary-mode streams for RecordFormat::kBinary). `stage_cap` bounds
  /// each player's staged-event buffer.
  explicit FlightRecorder(std::ostream& out, RecordFormat format = RecordFormat::kJsonl,
                          std::size_t stage_cap = std::size_t{1} << 16);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Install the harness-side output evaluator used by phase_summary.
  /// The evaluator closes over the planted matrix; the recorder (and
  /// the library code calling it) only ever sees the std::function.
  void set_output_evaluator(OutputEvaluator fn) { evaluator_ = std::move(fn); }

  // ---- serial emission (phase boundaries, scheduler rounds) --------
  // Every serial emission first drains the staged per-player events in
  // player order — that drain is what makes the stream --threads
  // invariant. Only call from serial code (no staged writers in
  // flight).

  /// Enter a run scope. The outermost scope emits run_begin and sizes
  /// the per-player stages; nested entry points (unknown_d's per-guess
  /// find_preferences, anytime's unknown_d phases) emit phase_begin —
  /// the phase-transition trail of the algorithm tower.
  void run_begin(std::string_view label, double alpha, std::size_t players,
                 std::size_t objects, std::uint64_t d = 0);
  /// Leave a run scope; rounds/probes are the scope's own deltas.
  void run_end(std::string_view label, std::uint64_t rounds, std::uint64_t probes);

  /// Per-phase summary record: cumulative cost plus output quality via
  /// the installed evaluator (disc fields stay -1 without one).
  /// Returns the evaluation so callers can reuse it (RunReport
  /// timeline) without paying for a second pass.
  PhaseEval phase_summary(std::string_view label, const std::vector<bits::BitVector>& outputs,
                          std::uint64_t cum_rounds, std::uint64_t cum_probes);

  void round_begin(std::uint64_t round);
  void round_end(std::uint64_t round, std::uint64_t active_players, std::uint64_t posts);
  /// Result (p, o) published on the billboard at the end of `round`.
  void post(std::uint64_t round, std::uint32_t player, std::uint32_t object);
  /// Scheduler-observed fault transition (kCrash/kRecover/kPostDropped/
  /// kPostDelayed), stamped with the lockstep round.
  void fault(RecorderEvent::Kind kind, std::uint64_t round, std::uint32_t player,
             std::uint64_t a = 0);
  /// Serial progress mark (zero-radius adopt steps etc.) — also a
  /// drain point for the staged buffers.
  void note(std::string_view label, std::uint64_t a, std::uint64_t b);

  // ---- parallel-safe staging (owner-write per player) --------------

  void probe(std::uint32_t player, std::uint32_t object, bool value,
             std::uint64_t invocation);
  void probe_failed(std::uint32_t player, std::uint32_t object, std::uint64_t invocation);
  void crashed(std::uint32_t player);
  void degraded(std::uint32_t player);
  void vector_post(std::uint32_t player, std::string_view channel, std::uint64_t vec_hash,
                   std::uint64_t vec_bits);

  /// Drain any remaining staged events and flush the sink.
  void flush();

  // ---- checkpoint splice -------------------------------------------

  /// Current logical clock (the `t` the next emission would get). Only
  /// meaningful at serial points; checkpoints store it so a resumed
  /// recorder continues the same timeline.
  [[nodiscard]] std::uint64_t clock();

  /// Re-enter a previously checkpointed run without emitting run_begin:
  /// restores the logical clock, opens one run scope, and sizes the
  /// per-player stages. The resumed stream, appended to the checkpoint
  /// prefix of the original log, is byte-identical to an uninterrupted
  /// run — the splice contract run_tests.sh --kill-resume verifies.
  void resume_run(std::size_t players, std::uint64_t clock);

  [[nodiscard]] std::uint64_t events_written() const {
    return written_.load(std::memory_order_relaxed);
  }
  /// Events lost to stage caps or emitted before the first run_begin.
  [[nodiscard]] std::uint64_t events_dropped() const {
    return dropped_total_.load(std::memory_order_relaxed);
  }

 private:
  struct Staged {
    RecorderEvent::Kind kind;
    std::uint32_t object = 0;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::string label;  ///< vector_post channel only
  };
  struct Stage {
    std::vector<Staged> events;
    std::uint64_t dropped = 0;
  };

  void stage(std::uint32_t player, Staged ev);
  void drain_locked() TMWIA_REQUIRES(mu_);
  void write_locked(RecorderEvent& ev) TMWIA_REQUIRES(mu_);
  void emit_serial(RecorderEvent ev) TMWIA_EXCLUDES(mu_);

  std::ostream& out_;      ///< written only under mu_ (references can't be guarded)
  RecordFormat format_;    ///< immutable after construction
  std::size_t stage_cap_;  ///< immutable after construction
  OutputEvaluator evaluator_;  ///< installed/read from serial code only

  support::Mutex mu_;  ///< serializes serial emissions + the sink
  std::uint64_t clock_ TMWIA_GUARDED_BY(mu_) = 0;
  std::size_t depth_ TMWIA_GUARDED_BY(mu_) = 0;  ///< run-scope nesting
  /// Deliberately NOT guarded by mu_: stages_[p] is owner-write — only
  /// the thread running player p appends (see the header comment), and
  /// the serial drains that read it hold mu_ *and* happen at
  /// parallel_for join points with no staged writers in flight. The
  /// vector itself is resized only at those serial points.
  std::vector<Stage> stages_;
  std::atomic<std::uint64_t> written_{0};
  std::atomic<std::uint64_t> dropped_total_{0};
  std::atomic<std::uint64_t> unstaged_dropped_{0};  ///< events before run_begin
};

/// Process-global recorder used by the library's built-in record
/// points. Null (recording off) until a sink installs one; reading it
/// is one relaxed atomic load — inline, because the probe hot path
/// performs this check tens of millions of times per run.
namespace detail {
// tmwia-lint: allow(nonconst-global) the process-wide recorder slot itself; installed/cleared only by sink owners via set_recorder
inline std::atomic<FlightRecorder*> g_recorder{nullptr};
}  // namespace detail
inline FlightRecorder* recorder() { return detail::g_recorder.load(std::memory_order_relaxed); }
inline void set_recorder(FlightRecorder* r) {
  detail::g_recorder.store(r, std::memory_order_release);
}

/// A parsed flight log (either wire format).
struct RecorderLog {
  std::vector<RecorderEvent> events;
  RecordFormat format = RecordFormat::kJsonl;
};

/// Parse a recorder stream, sniffing the binary magic. Throws
/// std::runtime_error on malformed input.
RecorderLog read_recorder_log(std::istream& in);

}  // namespace tmwia::obs
