#include "tmwia/obs/telemetry.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace tmwia::obs {
namespace {

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

/// Prometheus metric name: "tmwia_" prefix, dots/invalid chars -> '_'.
std::string prom_name(std::string_view name) {
  std::string out = "tmwia_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

std::string prometheus_exposition(const Snapshot& snap) {
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " counter\n";
    out += p + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " gauge\n";
    out += p + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += i < h.buckets.size() ? h.buckets[i] : 0;
      out += p + "_bucket{le=\"" + std::to_string(h.bounds[i]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += p + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += p + "_sum " + std::to_string(h.sum) + "\n";
    out += p + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

TelemetryExporter::TelemetryExporter(TelemetryConfig cfg, MetricsRegistry& registry,
                                     Profiler* profiler, SloWatchdog* watchdog, Tracer* tracer)
    : cfg_(std::move(cfg)), registry_(registry), profiler_(profiler), watchdog_(watchdog),
      tracer_(tracer) {
  support::MutexLock lk(mu_);
  out_.open(cfg_.path, std::ios::out | std::ios::trunc);
  if (!out_) {
    throw std::runtime_error("TelemetryExporter: cannot open '" + cfg_.path + "'");
  }
}

TelemetryExporter::~TelemetryExporter() {
  try {
    finish();
  } catch (...) {
    // A failing sink must never take the service down with it.
  }
}

void TelemetryExporter::observe_request(std::string_view tenant, std::string_view op,
                                        std::uint64_t latency_us,
                                        std::uint64_t staleness_epochs, bool degraded) {
  support::MutexLock lk(mu_);
  if (finished_) return;
  window_.push_back(
      Pending{std::string(tenant), std::string(op), latency_us, staleness_epochs, degraded});
  ++total_requests_;
  if (++since_tick_ >= std::max<std::size_t>(1, cfg_.every)) tick_locked();
}

void TelemetryExporter::tick() {
  support::MutexLock lk(mu_);
  if (!finished_) tick_locked();
}

void TelemetryExporter::tick_locked() {
  const std::uint64_t seq = ++seq_;
  since_tick_ = 0;

  const Snapshot snap = registry_.snapshot();
  std::string line = "{\"kind\":\"snapshot\",\"seq\":";
  line += std::to_string(seq);
  line += ",\"requests\":";
  line += std::to_string(total_requests_);
  line += ",\"metrics\":";
  line += snap.to_json();
  if (cfg_.include_profile && profiler_ != nullptr && profiler_->enabled()) {
    line += ",\"profile\":";
    line += profiler_->report().to_json(profiler_->wall_sampling());
  }
  line.push_back('}');
  write_line_locked(line);

  // Tail exemplars: the K slowest requests of this tick, as stream
  // records and (when a tracer is attached) as trace spans.
  if (cfg_.exemplars > 0 && !window_.empty()) {
    const std::size_t k = std::min(cfg_.exemplars, window_.size());
    std::partial_sort(window_.begin(), window_.begin() + static_cast<std::ptrdiff_t>(k),
                      window_.end(), [](const Pending& a, const Pending& b) {
                        return a.latency_us > b.latency_us;
                      });
    for (std::size_t i = 0; i < k; ++i) {
      const Pending& p = window_[i];
      std::string ex = "{\"kind\":\"exemplar\",\"seq\":";
      ex += std::to_string(seq);
      ex += ",\"tenant\":";
      append_json_string(ex, p.tenant);
      ex += ",\"op\":";
      append_json_string(ex, p.op);
      ex += ",\"latency_us\":";
      ex += std::to_string(p.latency_us);
      ex += ",\"staleness\":";
      ex += std::to_string(p.staleness);
      ex += ",\"degraded\":";
      ex += p.degraded ? "true" : "false";
      ex.push_back('}');
      write_line_locked(ex);
      if (tracer_ != nullptr) {
        const auto span = tracer_->begin_span(
            "serve.exemplar", {{"tenant", p.tenant}, {"op", p.op}, {"seq", seq}});
        tracer_->end_span(span, {{"latency_us", p.latency_us},
                                 {"staleness", p.staleness},
                                 {"degraded", p.degraded ? std::uint64_t{1} : std::uint64_t{0}}});
      }
    }
  }
  window_.clear();

  if (watchdog_ != nullptr) {
    for (const auto& alert : watchdog_->evaluate(seq)) {
      write_line_locked(alert.to_json());
      ++alerts_;
    }
  }

  if (cfg_.write_exposition) write_exposition_locked(snap);
  out_.flush();
}

void TelemetryExporter::finish() {
  support::MutexLock lk(mu_);
  if (finished_) return;
  tick_locked();
  if (watchdog_ != nullptr) {
    std::string line = "{\"kind\":\"slo_report\",\"seq\":";
    line += std::to_string(seq_);
    line += ",\"report\":";
    line += watchdog_->report().to_json();
    line.push_back('}');
    write_line_locked(line);
  }
  out_.flush();
  finished_ = true;
}

void TelemetryExporter::write_line_locked(const std::string& line) {
  out_ << line << '\n';
  ++records_;
}

void TelemetryExporter::write_exposition_locked(const Snapshot& snap) {
  // src/obs cannot depend on src/io, so the atomic swap is inlined:
  // write the whole exposition to a tmp sibling, then rename over the
  // final path — a scraper sees the old file or the new one, never a
  // torn mix.
  const std::string final_path = cfg_.path + ".prom";
  const std::string tmp_path = final_path + ".tmp";
  {
    // tmwia-lint: allow(durable-write) obs cannot link io; tmp+rename swap below keeps the artifact atomic
    std::ofstream prom(tmp_path, std::ios::out | std::ios::trunc);
    if (!prom) return;  // exposition is best-effort; the JSONL stream is the record
    prom << prometheus_exposition(snap);
  }
  // tmwia-lint: allow(durable-write) second half of the inlined atomic swap (see above)
  std::rename(tmp_path.c_str(), final_path.c_str());
}

std::uint64_t TelemetryExporter::ticks() const {
  support::MutexLock lk(mu_);
  return seq_;
}

std::uint64_t TelemetryExporter::records_written() const {
  support::MutexLock lk(mu_);
  return records_;
}

std::uint64_t TelemetryExporter::alerts_written() const {
  support::MutexLock lk(mu_);
  return alerts_;
}

}  // namespace tmwia::obs
