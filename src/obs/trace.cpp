#include "tmwia/obs/trace.hpp"

#include <chrono>
#include <cstdio>

namespace tmwia::obs {
namespace {

// tmwia-lint: allow(nonconst-global) registered singleton: process-wide tracer slot
std::atomic<Tracer*> g_tracer{nullptr};

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_attr_value(std::string& out, const Attr& a) {
  if (const auto* i = std::get_if<std::int64_t>(&a.value)) {
    out += std::to_string(*i);
  } else if (const auto* u = std::get_if<std::uint64_t>(&a.value)) {
    out += std::to_string(*u);
  } else if (const auto* d = std::get_if<double>(&a.value)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", *d);
    out += buf;
  } else {
    append_json_string(out, std::get<std::string_view>(a.value));
  }
}

}  // namespace

Tracer::Tracer(std::ostream& out, bool wall_time) : out_(out), wall_time_(wall_time) {}

std::uint64_t Tracer::begin_span(std::string_view name, AttrList attrs) {
  std::uint64_t id = 0;
  {
    support::MutexLock lk(mu_);
    id = next_span_++;
  }
  emit("begin", id, name, attrs);
  return id;
}

void Tracer::end_span(std::uint64_t span_id, AttrList attrs) {
  emit("end", span_id, {}, attrs);
}

void Tracer::event(std::string_view name, AttrList attrs) {
  emit("event", 0, name, attrs);
}

void Tracer::flush() {
  support::MutexLock lk(mu_);
  out_.flush();
}

void Tracer::emit(std::string_view kind, std::uint64_t span_id, std::string_view name,
                  AttrList attrs) {
  std::string line;
  line.reserve(96);
  support::MutexLock lk(mu_);
  line += "{\"t\":";
  line += std::to_string(clock_++);
  line += ",\"kind\":\"";
  line += kind;
  line.push_back('"');
  if (span_id != 0) {
    line += ",\"span\":";
    line += std::to_string(span_id);
  }
  if (!name.empty()) {
    line += ",\"name\":";
    append_json_string(line, name);
  }
  if (wall_time_) {
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now().time_since_epoch())
                        .count();
    line += ",\"wall_us\":";
    line += std::to_string(us);
  }
  // tmwia-lint: allow(size-empty) std::initializer_list has size() but no empty()
  if (attrs.size() != 0) {
    line += ",\"attrs\":{";
    bool first = true;
    for (const Attr& a : attrs) {
      if (!first) line.push_back(',');
      first = false;
      append_json_string(line, a.key);
      line.push_back(':');
      append_attr_value(line, a);
    }
    line.push_back('}');
  }
  line += "}\n";
  out_ << line;
}

Tracer* tracer() { return g_tracer.load(std::memory_order_acquire); }

void set_tracer(Tracer* t) { g_tracer.store(t, std::memory_order_release); }

}  // namespace tmwia::obs
