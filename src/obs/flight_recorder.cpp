#include "tmwia/obs/flight_recorder.hpp"

#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace tmwia::obs {
namespace {

constexpr char kBinaryMagic[8] = {'T', 'M', 'W', 'I', 'A', 'F', 'R', '1'};

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

struct KindName {
  RecorderEvent::Kind kind;
  const char* name;
};

constexpr std::array<KindName, 18> kKindNames{{
    {RecorderEvent::Kind::kRunBegin, "run_begin"},
    {RecorderEvent::Kind::kRunEnd, "run_end"},
    {RecorderEvent::Kind::kPhaseBegin, "phase_begin"},
    {RecorderEvent::Kind::kPhaseEnd, "phase_end"},
    {RecorderEvent::Kind::kPhaseSummary, "phase_summary"},
    {RecorderEvent::Kind::kRoundBegin, "round_begin"},
    {RecorderEvent::Kind::kRoundEnd, "round_end"},
    {RecorderEvent::Kind::kProbe, "probe"},
    {RecorderEvent::Kind::kProbeFailed, "probe_failed"},
    {RecorderEvent::Kind::kPost, "post"},
    {RecorderEvent::Kind::kVectorPost, "vector_post"},
    {RecorderEvent::Kind::kCrash, "crash"},
    {RecorderEvent::Kind::kRecover, "recover"},
    {RecorderEvent::Kind::kPostDropped, "post_dropped"},
    {RecorderEvent::Kind::kPostDelayed, "post_delayed"},
    {RecorderEvent::Kind::kDegraded, "degraded"},
    {RecorderEvent::Kind::kOverflow, "overflow"},
    {RecorderEvent::Kind::kNote, "note"},
}};

}  // namespace

const char* to_string(RecorderEvent::Kind kind) {
  for (const auto& kn : kKindNames) {
    if (kn.kind == kind) return kn.name;
  }
  return "unknown";
}

std::optional<RecorderEvent::Kind> kind_from_string(std::string_view name) {
  for (const auto& kn : kKindNames) {
    if (name == kn.name) return kn.kind;
  }
  return std::nullopt;
}

FlightRecorder::FlightRecorder(std::ostream& out, RecordFormat format, std::size_t stage_cap)
    : out_(out), format_(format), stage_cap_(stage_cap) {
  if (format_ == RecordFormat::kBinary) {
    out_.write(kBinaryMagic, sizeof kBinaryMagic);
  }
}

FlightRecorder::~FlightRecorder() { flush(); }

void FlightRecorder::write_locked(RecorderEvent& ev) {
  ev.t = clock_++;
  written_.fetch_add(1, std::memory_order_relaxed);
  std::string line;
  line.reserve(96);
  if (format_ == RecordFormat::kJsonl) {
    line += "{\"t\":";
    line += std::to_string(ev.t);
    line += ",\"ev\":\"";
    line += to_string(ev.kind);
    line.push_back('"');
    if (ev.has(RecorderEvent::kHasRound)) {
      line += ",\"round\":";
      line += std::to_string(ev.round);
    }
    if (ev.has(RecorderEvent::kHasPlayer)) {
      line += ",\"p\":";
      line += std::to_string(ev.player);
    }
    if (ev.has(RecorderEvent::kHasObject)) {
      line += ",\"o\":";
      line += std::to_string(ev.object);
    }
    if (ev.has(RecorderEvent::kHasA)) {
      line += ",\"a\":";
      line += std::to_string(ev.a);
    }
    if (ev.has(RecorderEvent::kHasB)) {
      line += ",\"b\":";
      line += std::to_string(ev.b);
    }
    if (ev.has(RecorderEvent::kHasX)) {
      line += ",\"x\":";
      append_double(line, ev.x);
    }
    if (ev.has(RecorderEvent::kHasY)) {
      line += ",\"y\":";
      append_double(line, ev.y);
    }
    if (ev.has(RecorderEvent::kHasLabel)) {
      line += ",\"label\":";
      append_json_string(line, ev.label);
    }
    line += "}\n";
  } else {
    line.push_back(static_cast<char>(ev.kind));
    line.push_back(static_cast<char>(ev.mask));
    put_u64(line, ev.t);
    if (ev.has(RecorderEvent::kHasRound)) put_u64(line, ev.round);
    if (ev.has(RecorderEvent::kHasPlayer)) put_u32(line, ev.player);
    if (ev.has(RecorderEvent::kHasObject)) put_u32(line, ev.object);
    if (ev.has(RecorderEvent::kHasA)) put_u64(line, ev.a);
    if (ev.has(RecorderEvent::kHasB)) put_u64(line, ev.b);
    if (ev.has(RecorderEvent::kHasX)) put_f64(line, ev.x);
    if (ev.has(RecorderEvent::kHasY)) put_f64(line, ev.y);
    if (ev.has(RecorderEvent::kHasLabel)) {
      put_u32(line, static_cast<std::uint32_t>(ev.label.size()));
      line += ev.label;
    }
  }
  out_.write(line.data(), static_cast<std::streamsize>(line.size()));
}

void FlightRecorder::drain_locked() {
  for (std::size_t p = 0; p < stages_.size(); ++p) {
    Stage& st = stages_[p];
    for (Staged& s : st.events) {
      RecorderEvent ev;
      ev.kind = s.kind;
      ev.player = static_cast<std::uint32_t>(p);
      ev.mask = RecorderEvent::kHasPlayer;
      switch (s.kind) {
        case RecorderEvent::Kind::kProbe:
          ev.object = s.object;
          ev.a = s.a;
          ev.b = s.b;
          ev.mask |= RecorderEvent::kHasObject | RecorderEvent::kHasA | RecorderEvent::kHasB;
          break;
        case RecorderEvent::Kind::kProbeFailed:
          ev.object = s.object;
          ev.b = s.b;
          ev.mask |= RecorderEvent::kHasObject | RecorderEvent::kHasB;
          break;
        case RecorderEvent::Kind::kVectorPost:
          ev.a = s.a;
          ev.b = s.b;
          ev.label = std::move(s.label);
          ev.mask |= RecorderEvent::kHasA | RecorderEvent::kHasB | RecorderEvent::kHasLabel;
          break;
        default:  // kCrash / kDegraded carry only the player
          break;
      }
      write_locked(ev);
    }
    st.events.clear();
    if (st.dropped != 0) {
      RecorderEvent ev;
      ev.kind = RecorderEvent::Kind::kOverflow;
      ev.player = static_cast<std::uint32_t>(p);
      ev.a = st.dropped;
      ev.mask = RecorderEvent::kHasPlayer | RecorderEvent::kHasA;
      write_locked(ev);
      st.dropped = 0;
    }
  }
}

void FlightRecorder::emit_serial(RecorderEvent ev) {
  support::MutexLock lk(mu_);
  drain_locked();
  write_locked(ev);
}

void FlightRecorder::run_begin(std::string_view label, double alpha, std::size_t players,
                               std::size_t objects, std::uint64_t d) {
  support::MutexLock lk(mu_);
  drain_locked();
  RecorderEvent ev;
  ev.label = std::string(label);
  ev.x = alpha;
  if (depth_++ == 0) {
    if (stages_.size() < players) stages_.resize(players);
    ev.kind = RecorderEvent::Kind::kRunBegin;
    ev.a = players;
    ev.b = objects;
    ev.mask = RecorderEvent::kHasLabel | RecorderEvent::kHasX | RecorderEvent::kHasA |
              RecorderEvent::kHasB;
  } else {
    ev.kind = RecorderEvent::Kind::kPhaseBegin;
    ev.a = d;
    ev.mask = RecorderEvent::kHasLabel | RecorderEvent::kHasX | RecorderEvent::kHasA;
  }
  write_locked(ev);
}

void FlightRecorder::run_end(std::string_view label, std::uint64_t rounds, std::uint64_t probes) {
  support::MutexLock lk(mu_);
  drain_locked();
  RecorderEvent ev;
  ev.label = std::string(label);
  ev.a = rounds;
  ev.b = probes;
  ev.mask = RecorderEvent::kHasLabel | RecorderEvent::kHasA | RecorderEvent::kHasB;
  if (depth_ > 0) --depth_;
  ev.kind = depth_ == 0 ? RecorderEvent::Kind::kRunEnd : RecorderEvent::Kind::kPhaseEnd;
  write_locked(ev);
}

FlightRecorder::PhaseEval FlightRecorder::phase_summary(
    std::string_view label, const std::vector<bits::BitVector>& outputs,
    std::uint64_t cum_rounds, std::uint64_t cum_probes) {
  PhaseEval eval;
  if (evaluator_) eval = evaluator_(outputs);
  RecorderEvent ev;
  ev.kind = RecorderEvent::Kind::kPhaseSummary;
  ev.label = std::string(label);
  ev.player = static_cast<std::uint32_t>(outputs.size());
  ev.a = cum_rounds;
  ev.b = cum_probes;
  ev.mask = RecorderEvent::kHasLabel | RecorderEvent::kHasPlayer | RecorderEvent::kHasA |
            RecorderEvent::kHasB;
  if (eval.max_disc >= 0.0) {
    ev.x = eval.max_disc;
    ev.y = eval.mean_disc;
    ev.mask |= RecorderEvent::kHasX | RecorderEvent::kHasY;
  }
  emit_serial(std::move(ev));
  return eval;
}

void FlightRecorder::round_begin(std::uint64_t round) {
  RecorderEvent ev;
  ev.kind = RecorderEvent::Kind::kRoundBegin;
  ev.round = round;
  ev.mask = RecorderEvent::kHasRound;
  emit_serial(std::move(ev));
}

void FlightRecorder::round_end(std::uint64_t round, std::uint64_t active_players,
                               std::uint64_t posts) {
  RecorderEvent ev;
  ev.kind = RecorderEvent::Kind::kRoundEnd;
  ev.round = round;
  ev.a = active_players;
  ev.b = posts;
  ev.mask = RecorderEvent::kHasRound | RecorderEvent::kHasA | RecorderEvent::kHasB;
  emit_serial(std::move(ev));
}

void FlightRecorder::post(std::uint64_t round, std::uint32_t player, std::uint32_t object) {
  RecorderEvent ev;
  ev.kind = RecorderEvent::Kind::kPost;
  ev.round = round;
  ev.player = player;
  ev.object = object;
  ev.mask = RecorderEvent::kHasRound | RecorderEvent::kHasPlayer | RecorderEvent::kHasObject;
  emit_serial(std::move(ev));
}

void FlightRecorder::fault(RecorderEvent::Kind kind, std::uint64_t round, std::uint32_t player,
                           std::uint64_t a) {
  RecorderEvent ev;
  ev.kind = kind;
  ev.round = round;
  ev.player = player;
  ev.mask = RecorderEvent::kHasRound | RecorderEvent::kHasPlayer;
  if (kind == RecorderEvent::Kind::kPostDelayed) {
    ev.a = a;
    ev.mask |= RecorderEvent::kHasA;
  }
  emit_serial(std::move(ev));
}

void FlightRecorder::note(std::string_view label, std::uint64_t a, std::uint64_t b) {
  RecorderEvent ev;
  ev.kind = RecorderEvent::Kind::kNote;
  ev.label = std::string(label);
  ev.a = a;
  ev.b = b;
  ev.mask = RecorderEvent::kHasLabel | RecorderEvent::kHasA | RecorderEvent::kHasB;
  emit_serial(std::move(ev));
}

void FlightRecorder::stage(std::uint32_t player, Staged ev) {
  if (player >= stages_.size()) {
    // Probe traffic before the first run_begin (or beyond the declared
    // player count): counted, not recorded.
    unstaged_dropped_.fetch_add(1, std::memory_order_relaxed);
    dropped_total_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Stage& st = stages_[player];
  if (st.events.size() >= stage_cap_) {
    ++st.dropped;
    dropped_total_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  st.events.push_back(std::move(ev));
}

void FlightRecorder::probe(std::uint32_t player, std::uint32_t object, bool value,
                           std::uint64_t invocation) {
  Staged s;
  s.kind = RecorderEvent::Kind::kProbe;
  s.object = object;
  s.a = value ? 1 : 0;
  s.b = invocation;
  stage(player, std::move(s));
}

void FlightRecorder::probe_failed(std::uint32_t player, std::uint32_t object,
                                  std::uint64_t invocation) {
  Staged s;
  s.kind = RecorderEvent::Kind::kProbeFailed;
  s.object = object;
  s.b = invocation;
  stage(player, std::move(s));
}

void FlightRecorder::crashed(std::uint32_t player) {
  Staged s;
  s.kind = RecorderEvent::Kind::kCrash;
  stage(player, std::move(s));
}

void FlightRecorder::degraded(std::uint32_t player) {
  Staged s;
  s.kind = RecorderEvent::Kind::kDegraded;
  stage(player, std::move(s));
}

void FlightRecorder::vector_post(std::uint32_t player, std::string_view channel,
                                 std::uint64_t vec_hash, std::uint64_t vec_bits) {
  Staged s;
  s.kind = RecorderEvent::Kind::kVectorPost;
  s.a = vec_hash;
  s.b = vec_bits;
  s.label = std::string(channel);
  stage(player, std::move(s));
}

void FlightRecorder::flush() {
  support::MutexLock lk(mu_);
  drain_locked();
  const auto unstaged = unstaged_dropped_.exchange(0, std::memory_order_relaxed);
  if (unstaged != 0) {
    RecorderEvent ev;
    ev.kind = RecorderEvent::Kind::kOverflow;
    ev.a = unstaged;
    ev.mask = RecorderEvent::kHasA;
    write_locked(ev);
  }
  out_.flush();
}

std::uint64_t FlightRecorder::clock() {
  support::MutexLock lk(mu_);
  return clock_;
}

void FlightRecorder::resume_run(std::size_t players, std::uint64_t clock) {
  support::MutexLock lk(mu_);
  clock_ = clock;
  depth_ = 1;  // re-open the checkpointed run scope silently
  if (stages_.size() < players) stages_.resize(players);
}

// ---------------------------------------------------------------------------
// Reader

namespace {

class LineParser {
 public:
  explicit LineParser(std::string_view line, std::size_t lineno)
      : s_(line), lineno_(lineno) {}

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("recorder log line " + std::to_string(lineno_) + ": " + what);
  }

  void expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool peek(char c) const { return pos_ < s_.size() && s_[pos_] == c; }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("truncated escape");
        char e = s_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'u': {
            if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
            unsigned v = 0;
            for (int i = 0; i < 4; ++i) {
              char h = s_[pos_++];
              v <<= 4;
              if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') v |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') v |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            out.push_back(static_cast<char>(v & 0x7f));
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out.push_back(c);
      }
    }
    expect('"');
    return out;
  }

  std::string_view parse_number_token() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() && s_[pos_] != ',' && s_[pos_] != '}') ++pos_;
    if (pos_ == start) fail("empty value");
    return s_.substr(start, pos_ - start);
  }

 private:
  std::string_view s_;
  std::size_t pos_ = 0;
  std::size_t lineno_;
};

RecorderEvent parse_jsonl_line(std::string_view line, std::size_t lineno) {
  LineParser p(line, lineno);
  RecorderEvent ev;
  p.expect('{');
  bool first = true;
  while (!p.peek('}')) {
    if (!first) p.expect(',');
    first = false;
    const std::string key = p.parse_string();
    p.expect(':');
    if (key == "ev" || key == "label") {
      const std::string val = p.parse_string();
      if (key == "ev") {
        const auto k = kind_from_string(val);
        if (!k) p.fail("unknown event kind '" + val + "'");
        ev.kind = *k;
      } else {
        ev.label = val;
        ev.mask |= RecorderEvent::kHasLabel;
      }
      continue;
    }
    const std::string_view tok = p.parse_number_token();
    const std::string tmp(tok);
    if (key == "x" || key == "y") {
      const double v = std::strtod(tmp.c_str(), nullptr);
      if (key == "x") {
        ev.x = v;
        ev.mask |= RecorderEvent::kHasX;
      } else {
        ev.y = v;
        ev.mask |= RecorderEvent::kHasY;
      }
      continue;
    }
    const std::uint64_t v = std::strtoull(tmp.c_str(), nullptr, 10);
    if (key == "t") {
      ev.t = v;
    } else if (key == "round") {
      ev.round = v;
      ev.mask |= RecorderEvent::kHasRound;
    } else if (key == "p") {
      ev.player = static_cast<std::uint32_t>(v);
      ev.mask |= RecorderEvent::kHasPlayer;
    } else if (key == "o") {
      ev.object = static_cast<std::uint32_t>(v);
      ev.mask |= RecorderEvent::kHasObject;
    } else if (key == "a") {
      ev.a = v;
      ev.mask |= RecorderEvent::kHasA;
    } else if (key == "b") {
      ev.b = v;
      ev.mask |= RecorderEvent::kHasB;
    } else {
      p.fail("unknown key '" + key + "'");
    }
  }
  p.expect('}');
  return ev;
}

std::uint64_t get_u64(std::istream& in) {
  unsigned char buf[8];
  in.read(reinterpret_cast<char*>(buf), 8);
  if (!in) throw std::runtime_error("recorder log: truncated binary record");
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | buf[i];
  return v;
}

std::uint32_t get_u32(std::istream& in) {
  unsigned char buf[4];
  in.read(reinterpret_cast<char*>(buf), 4);
  if (!in) throw std::runtime_error("recorder log: truncated binary record");
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | buf[i];
  return v;
}

double get_f64(std::istream& in) {
  const std::uint64_t bits = get_u64(in);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

RecorderLog read_binary(std::istream& in) {
  RecorderLog log;
  log.format = RecordFormat::kBinary;
  for (;;) {
    const int kind_byte = in.get();
    if (kind_byte == std::char_traits<char>::eof()) break;
    const int mask_byte = in.get();
    if (mask_byte == std::char_traits<char>::eof()) {
      throw std::runtime_error("recorder log: truncated binary record");
    }
    RecorderEvent ev;
    ev.kind = static_cast<RecorderEvent::Kind>(kind_byte);
    if (std::string_view(to_string(ev.kind)) == "unknown") {
      throw std::runtime_error("recorder log: unknown binary event kind " +
                               std::to_string(kind_byte));
    }
    ev.mask = static_cast<std::uint8_t>(mask_byte);
    ev.t = get_u64(in);
    if (ev.has(RecorderEvent::kHasRound)) ev.round = get_u64(in);
    if (ev.has(RecorderEvent::kHasPlayer)) ev.player = get_u32(in);
    if (ev.has(RecorderEvent::kHasObject)) ev.object = get_u32(in);
    if (ev.has(RecorderEvent::kHasA)) ev.a = get_u64(in);
    if (ev.has(RecorderEvent::kHasB)) ev.b = get_u64(in);
    if (ev.has(RecorderEvent::kHasX)) ev.x = get_f64(in);
    if (ev.has(RecorderEvent::kHasY)) ev.y = get_f64(in);
    if (ev.has(RecorderEvent::kHasLabel)) {
      const std::uint32_t len = get_u32(in);
      if (len > (std::uint32_t{1} << 20)) {
        throw std::runtime_error("recorder log: implausible label length");
      }
      ev.label.resize(len);
      in.read(ev.label.data(), static_cast<std::streamsize>(len));
      if (!in) throw std::runtime_error("recorder log: truncated label");
    }
    log.events.push_back(std::move(ev));
  }
  return log;
}

}  // namespace

RecorderLog read_recorder_log(std::istream& in) {
  char magic[sizeof kBinaryMagic];
  in.read(magic, sizeof magic);
  const auto got = in.gcount();
  if (got == static_cast<std::streamsize>(sizeof magic) &&
      std::memcmp(magic, kBinaryMagic, sizeof magic) == 0) {
    return read_binary(in);
  }
  // Not binary: rewind and parse as JSONL.
  in.clear();
  in.seekg(0);
  RecorderLog log;
  log.format = RecordFormat::kJsonl;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    log.events.push_back(parse_jsonl_line(line, lineno));
  }
  return log;
}

}  // namespace tmwia::obs
