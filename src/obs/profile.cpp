#include "tmwia/obs/profile.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace tmwia::obs {
namespace {

/// Profilers get process-unique ids so the thread-local shard cache
/// can never confuse a new profiler allocated at a recycled address.
// tmwia-lint: allow(nonconst-global) registered singleton: monotone id source
std::atomic<std::uint64_t> g_next_profiler_id{1};

struct TlsShardCache {
  std::uint64_t profiler_id = 0;
  void* shard = nullptr;
};
thread_local TlsShardCache t_shard_cache;

thread_local Profiler::ZoneId t_current_zone = Profiler::kRoot;

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

std::int64_t wall_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void append_node_json(std::string& out, const ProfileNode& node, bool include_wall) {
  out += "{\"name\":";
  append_json_string(out, node.name);
  out += ",\"costs\":{";
  bool first = true;
  for (std::size_t i = 0; i < kCostCount; ++i) {
    const auto axis = static_cast<Cost>(i);
    if (axis == Cost::kWallUs && !include_wall) continue;
    if (node.costs[i] == 0) continue;
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, cost_name(axis));
    out.push_back(':');
    out += std::to_string(node.costs[i]);
  }
  out += "},\"children\":[";
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    if (i != 0) out.push_back(',');
    append_node_json(out, node.children[i], include_wall);
  }
  out += "]}";
}

void append_flame_json(std::string& out, const ProfileNode& node, Cost axis) {
  out += "{\"name\":";
  append_json_string(out, node.name);
  out += ",\"value\":";
  out += std::to_string(node.cost(axis));
  out += ",\"children\":[";
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    if (i != 0) out.push_back(',');
    append_flame_json(out, node.children[i], axis);
  }
  out += "]}";
}

void sort_children(ProfileNode& node) {
  std::sort(node.children.begin(), node.children.end(),
            [](const ProfileNode& a, const ProfileNode& b) { return a.name < b.name; });
  for (auto& child : node.children) sort_children(child);
}

}  // namespace

std::string_view cost_name(Cost c) {
  switch (c) {
    case Cost::kProbes: return "probes";
    case Cost::kKernelBytes: return "kernel_bytes";
    case Cost::kRankQueries: return "rank_queries";
    case Cost::kLocks: return "locks";
    case Cost::kRounds: return "rounds";
    case Cost::kCalls: return "calls";
    case Cost::kWallUs: return "wall_us";
    case Cost::kCount: break;
  }
  return "?";
}

// ---------------------------------------------------------------------------
// ProfileNode / ProfileReport

std::uint64_t ProfileNode::total(Cost c) const {
  std::uint64_t sum = cost(c);
  for (const auto& child : children) sum += child.total(c);
  return sum;
}

std::string ProfileReport::to_json(bool include_wall) const {
  std::string out;
  append_node_json(out, root, include_wall);
  return out;
}

std::string ProfileReport::flamegraph_json(Cost axis) const {
  std::string out;
  append_flame_json(out, root, axis);
  return out;
}

// ---------------------------------------------------------------------------
// Profiler::Shard (owner-write pattern, mirrors MetricsRegistry::Shard)

Profiler::Shard::~Shard() {
  for (auto& c : chunks) delete c.load(std::memory_order_relaxed);
}

void Profiler::Shard::add(std::size_t slot, std::uint64_t v) {
  Chunk* c = chunks[slot >> kChunkBits].load(std::memory_order_acquire);
  if (c == nullptr) c = grow(slot >> kChunkBits);
  auto& s = c->slots[slot & (kChunkSlots - 1)];
  // Owner-thread-only writes: plain load+store, no RMW.
  s.store(s.load(std::memory_order_relaxed) + v, std::memory_order_relaxed);
}

Profiler::Chunk* Profiler::Shard::grow(std::size_t chunk_index) {
  auto* fresh = new Chunk();
  Chunk* expected = nullptr;
  if (!chunks[chunk_index].compare_exchange_strong(expected, fresh, std::memory_order_acq_rel)) {
    delete fresh;  // lost the (theoretical) race; owner-only writes make this unreachable
    return expected;
  }
  return fresh;
}

// ---------------------------------------------------------------------------
// Profiler

Profiler::Profiler(bool enabled)
    : enabled_(enabled), id_(g_next_profiler_id.fetch_add(1, std::memory_order_relaxed)) {
  support::MutexLock lk(mu_);
  zones_.push_back(ZoneInfo{"root", kRoot});  // kRoot names itself
}

Profiler::~Profiler() = default;

Profiler::Shard& Profiler::local_shard() {
  if (t_shard_cache.profiler_id == id_ && t_shard_cache.shard != nullptr) {
    return *static_cast<Shard*>(t_shard_cache.shard);
  }
  Shard& s = attach_thread();
  t_shard_cache = {id_, &s};
  return s;
}

Profiler::Shard& Profiler::attach_thread() {
  support::MutexLock lk(mu_);
  shards_.push_back(std::make_unique<Shard>());
  return *shards_.back();
}

Profiler::ZoneId Profiler::intern(ZoneId parent, std::string_view name) {
  support::MutexLock lk(mu_);
  auto it = ids_.find(std::make_pair(parent, std::string(name)));
  if (it != ids_.end()) return it->second;
  if ((zones_.size() + 1) * kCostCount > kMaxChunks * kChunkSlots) {
    // Out of slot space: attribute to the parent rather than throwing
    // from instrumentation (a profiler must never fail the workload).
    return parent;
  }
  const auto id = static_cast<ZoneId>(zones_.size());
  zones_.push_back(ZoneInfo{std::string(name), parent});
  ids_.emplace(std::make_pair(parent, std::string(name)), id);
  return id;
}

ProfileReport Profiler::report() const {
  // Snapshot structure and merge shard totals under the lock; the
  // slots themselves are atomics, so concurrent owner writes are not
  // corrupted (though a mid-phase report may split a deposit pair).
  std::vector<ZoneInfo> zones;
  std::vector<std::uint64_t> totals;
  {
    support::MutexLock lk(mu_);
    zones = zones_;
    totals.assign(zones.size() * kCostCount, 0);
    for (const auto& shard : shards_) {
      for (std::size_t ci = 0; ci < kMaxChunks; ++ci) {
        const Chunk* chunk = shard->chunks[ci].load(std::memory_order_acquire);
        if (chunk == nullptr) continue;
        const std::size_t base = ci << kChunkBits;
        for (std::size_t si = 0; si < kChunkSlots; ++si) {
          const std::size_t slot = base + si;
          if (slot >= totals.size()) break;
          totals[slot] += chunk->slots[si].load(std::memory_order_relaxed);
        }
      }
    }
  }

  // Build the id-keyed tree bottom-up (parents always precede
  // children in zones_, so one forward pass suffices), then re-key by
  // name: children sorted, ids gone.
  std::vector<ProfileNode> nodes(zones.size());
  for (std::size_t z = 0; z < zones.size(); ++z) {
    nodes[z].name = zones[z].name;
    for (std::size_t c = 0; c < kCostCount; ++c) {
      nodes[z].costs[c] = totals[z * kCostCount + c];
    }
  }
  ProfileReport rep;
  for (std::size_t z = zones.size(); z-- > 1;) {
    nodes[zones[z].parent].children.push_back(std::move(nodes[z]));
  }
  rep.root = std::move(nodes[0]);
  sort_children(rep.root);
  return rep;
}

void Profiler::reset() {
  support::MutexLock lk(mu_);
  for (const auto& shard : shards_) {
    for (auto& cp : shard->chunks) {
      Chunk* chunk = cp.load(std::memory_order_acquire);
      if (chunk == nullptr) continue;
      for (auto& s : chunk->slots) s.store(0, std::memory_order_relaxed);
    }
  }
}

Profiler::ZoneId Profiler::current_zone() { return t_current_zone; }

Profiler::ZoneId Profiler::swap_current_zone(ZoneId zone) {
  const ZoneId prev = t_current_zone;
  t_current_zone = zone;
  return prev;
}

Profiler& Profiler::global() {
  // Starts disabled: always-on zone scopes in library code cost one
  // relaxed load until a sink (tmwia_cli --prof=, serve telemetry)
  // flips the switch.
  static Profiler prof(/*enabled=*/false);
  return prof;
}

// ---------------------------------------------------------------------------
// ProfileZone

ProfileZone::ProfileZone(std::string_view name, Profiler& prof)
    : prof_(prof), active_(prof.enabled()), start_us_(-1) {
  if (!active_) {
    zone_ = parent_ = Profiler::current_zone();
    return;
  }
  parent_ = Profiler::current_zone();
  zone_ = prof_.intern(parent_, name);
  Profiler::swap_current_zone(zone_);
  if (prof_.wall_sampling()) start_us_ = wall_now_us();
}

ProfileZone::ProfileZone(Profiler::ZoneId zone, Profiler& prof)
    : prof_(prof), zone_(zone), active_(prof.enabled()), start_us_(-1) {
  if (!active_) {
    parent_ = Profiler::current_zone();
    return;
  }
  parent_ = Profiler::swap_current_zone(zone_);
  if (prof_.wall_sampling()) start_us_ = wall_now_us();
}

ProfileZone::~ProfileZone() {
  if (!active_) return;
  prof_.add(zone_, Cost::kCalls, 1);
  if (start_us_ >= 0) {
    const std::int64_t elapsed = wall_now_us() - start_us_;
    prof_.add(zone_, Cost::kWallUs, elapsed > 0 ? static_cast<std::uint64_t>(elapsed) : 0);
  }
  Profiler::swap_current_zone(parent_);
}

}  // namespace tmwia::obs
