#include "tmwia/obs/slo.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace tmwia::obs {
namespace {

void append_f64(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

double parse_number(std::string_view key, std::string_view value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(std::string(value), &used);
    if (used != value.size()) throw std::invalid_argument("trailing junk");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("SloSpec: bad value for '" + std::string(key) +
                                "': '" + std::string(value) + "'");
  }
}

}  // namespace

SloSpec SloSpec::parse(std::string_view spec) {
  SloSpec out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view item = spec.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      throw std::invalid_argument("SloSpec: expected key=value, got '" + std::string(item) + "'");
    }
    const std::string_view key = item.substr(0, eq);
    const std::string_view value = item.substr(eq + 1);
    const double v = parse_number(key, value);
    if (v < 0) throw std::invalid_argument("SloSpec: negative threshold for '" + std::string(key) + "'");
    if (key == "p99_us") {
      out.p99_us = v;
    } else if (key == "staleness") {
      out.staleness = static_cast<std::int64_t>(v);
    } else if (key == "degraded") {
      out.degraded = static_cast<std::int64_t>(v);
    } else if (key == "audit") {
      out.audit = static_cast<std::int64_t>(v);
    } else if (key == "window") {
      if (v < 1) throw std::invalid_argument("SloSpec: window must be >= 1");
      out.window = static_cast<std::size_t>(v);
    } else {
      throw std::invalid_argument("SloSpec: unknown key '" + std::string(key) + "'");
    }
  }
  return out;
}

std::string SloAlert::to_json() const {
  std::string out = "{\"kind\":\"alert\",\"seq\":";
  out += std::to_string(seq);
  out += ",\"objective\":\"";
  out += objective;
  out += "\",\"observed\":";
  append_f64(out, observed);
  out += ",\"threshold\":";
  append_f64(out, threshold);
  out += ",\"window\":";
  out += std::to_string(window_count);
  out.push_back('}');
  return out;
}

std::string SloReport::to_json() const {
  std::string out = "{\"ok\":";
  out += ok ? "true" : "false";
  out += ",\"evaluations\":";
  out += std::to_string(evaluations);
  out += ",\"objectives\":[";
  for (std::size_t i = 0; i < objectives.size(); ++i) {
    const auto& o = objectives[i];
    if (i != 0) out.push_back(',');
    out += "{\"name\":\"";
    out += o.name;
    out += "\",\"threshold\":";
    append_f64(out, o.threshold);
    out += ",\"worst\":";
    append_f64(out, o.worst);
    out += ",\"breaches\":";
    out += std::to_string(o.breaches);
    out += ",\"ok\":";
    out += o.ok ? "true" : "false";
    out.push_back('}');
  }
  out += "]}";
  return out;
}

SloWatchdog::SloWatchdog(SloSpec spec) : spec_(spec) {
  support::MutexLock lk(mu_);
  ring_.resize(std::max<std::size_t>(1, spec_.window));
}

void SloWatchdog::observe_request(std::uint64_t latency_us, std::uint64_t staleness_epochs,
                                  bool degraded) {
  support::MutexLock lk(mu_);
  ring_[ring_next_] = Sample{latency_us, staleness_epochs, degraded};
  ring_next_ = (ring_next_ + 1) % ring_.size();
  ++seen_;
}

void SloWatchdog::observe_audit_violations(std::uint64_t count) {
  support::MutexLock lk(mu_);
  audit_violations_ += count;
}

std::vector<SloAlert> SloWatchdog::evaluate(std::uint64_t seq) {
  support::MutexLock lk(mu_);
  ++evaluations_;
  const std::size_t n = static_cast<std::size_t>(std::min<std::uint64_t>(seen_, ring_.size()));
  std::vector<SloAlert> alerts;

  // Index order mirrors tracks_: p99_us, staleness, degraded, audit.
  const auto check = [&](std::size_t track, const char* name, double threshold,
                         double observed) {
    auto& t = tracks_[track];
    t.worst = std::max(t.worst, observed);
    if (observed > threshold) {
      ++t.breaches;
      alerts.push_back(SloAlert{seq, name, observed, threshold, n});
    }
  };

  if (spec_.p99_us >= 0 && n > 0) {
    std::vector<std::uint64_t> lat(n);
    for (std::size_t i = 0; i < n; ++i) lat[i] = ring_[i].latency_us;
    const std::size_t idx = (n * 99) / 100 >= n ? n - 1 : (n * 99) / 100;
    std::nth_element(lat.begin(), lat.begin() + static_cast<std::ptrdiff_t>(idx), lat.end());
    check(0, "p99_us", spec_.p99_us, static_cast<double>(lat[idx]));
  }
  if (spec_.staleness >= 0 && n > 0) {
    std::uint64_t worst = 0;
    for (std::size_t i = 0; i < n; ++i) worst = std::max(worst, ring_[i].staleness);
    check(1, "staleness", static_cast<double>(spec_.staleness), static_cast<double>(worst));
  }
  if (spec_.degraded >= 0 && n > 0) {
    std::uint64_t bad = 0;
    for (std::size_t i = 0; i < n; ++i) bad += ring_[i].degraded ? 1 : 0;
    check(2, "degraded", static_cast<double>(spec_.degraded), static_cast<double>(bad));
  }
  if (spec_.audit >= 0) {
    check(3, "audit", static_cast<double>(spec_.audit), static_cast<double>(audit_violations_));
  }
  return alerts;
}

bool SloWatchdog::breached() const {
  support::MutexLock lk(mu_);
  for (const auto& t : tracks_) {
    if (t.breaches > 0) return true;
  }
  return false;
}

SloReport SloWatchdog::report() const {
  support::MutexLock lk(mu_);
  SloReport rep;
  rep.evaluations = evaluations_;
  const auto push = [&](std::size_t track, const char* name, double threshold) {
    const auto& t = tracks_[track];
    rep.objectives.push_back(
        SloReport::Objective{name, threshold, t.worst, t.breaches, t.breaches == 0});
    if (t.breaches > 0) rep.ok = false;
  };
  if (spec_.p99_us >= 0) push(0, "p99_us", spec_.p99_us);
  if (spec_.staleness >= 0) push(1, "staleness", static_cast<double>(spec_.staleness));
  if (spec_.degraded >= 0) push(2, "degraded", static_cast<double>(spec_.degraded));
  if (spec_.audit >= 0) push(3, "audit", static_cast<double>(spec_.audit));
  return rep;
}

}  // namespace tmwia::obs
