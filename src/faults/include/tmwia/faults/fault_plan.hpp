// Fault model for the billboard execution stack.
//
// The paper's model (Section 1.1) assumes every player probes once per
// lockstep round and every result lands on the billboard. Its own
// motivation — dishonest eBay users, flaky sensors — says otherwise, and
// a production deployment certainly does. The faults subsystem makes the
// unreliable world a first-class, *deterministic* input: a FaultPlan is
// a seeded declarative spec of what goes wrong, a FaultInjector executes
// it at runtime, and a FaultReport makes every fired fault observable.
//
// Three fault classes (all decided by stateless hashes of the plan seed,
// so the same plan replays byte-identically):
//  * crash-stop  — a player stops probing at a given round, optionally
//    recovering later. Under the RoundScheduler the round is the global
//    lockstep round (recovery supported); under the centrally-simulated
//    phases it is the player's own probe-attempt count and the crash is
//    permanent for the run (there is no global clock to recover on).
//  * probe failure — an individual Probe call fails transiently. The
//    attempt still burns an invocation (the probe was sent; the result
//    was lost), so retries are charged faithfully to the theorem-bound
//    cost. Callers retry with a bounded budget; on exhaustion the player
//    degrades to billboard re-reads.
//  * post loss  — a published vector is dropped or delayed before it
//    becomes visible to other players.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "tmwia/matrix/ids.hpp"

namespace tmwia::faults {

using matrix::ObjectId;
using matrix::PlayerId;

/// Sentinel round meaning "never".
inline constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();

/// A crash-stop window for one player: down for rounds in [at, recover).
struct CrashWindow {
  std::uint64_t at = kNever;
  std::uint64_t recover = kNever;
};

/// Declarative, seeded fault specification. `parse` understands the CLI
/// grammar (comma-separated clauses, all optional):
///
///   seed=S          hash seed for every fault draw        (default 0)
///   crash=R@A       crash-stop each player w.p. R at round A
///   crash=R@A-B     ... at a per-player round hashed uniformly in [A,B]
///   recover=K       crashed players come back K rounds after crashing
///                   (RoundScheduler executions only)
///   probe=R         each Probe call fails transiently w.p. R
///   retry=N         retry budget per logical probe        (default 3)
///   drop=R          each billboard post is lost w.p. R
///   delay=R@K       each surviving post is delayed K rounds w.p. R
///   kill=R          SIGKILL the whole process at cumulative round R
///                   (checkpoint/resume drills; fires at most once)
///
/// Example: --faults=seed=7,crash=0.2@16-64,probe=0.05,retry=3,drop=0.1
struct FaultPlan {
  std::uint64_t seed = 0;

  // Crash-stop.
  double crash_rate = 0.0;
  std::uint64_t crash_round_lo = 0;
  std::uint64_t crash_round_hi = 0;
  /// Rounds after the crash at which the player recovers (kNever: stay
  /// down). Only honored by round-clocked (scheduler) executions.
  std::uint64_t recover_after = kNever;
  /// Explicit per-player windows, applied on top of the rate draw.
  std::vector<std::pair<PlayerId, CrashWindow>> explicit_crashes;

  // Transient probe failure.
  double probe_fail_rate = 0.0;
  std::size_t retry_budget = 3;

  // Billboard post loss.
  double post_drop_rate = 0.0;
  double post_delay_rate = 0.0;
  std::uint64_t post_delay_rounds = 0;

  /// Process kill switch: SIGKILL at the first checkpoint boundary whose
  /// cumulative round count reaches this value (kNever: off). Drives the
  /// kill/resume durability drills; deterministic, fires at most once.
  std::uint64_t kill_at_round = kNever;

  /// Does this plan inject anything at all?
  [[nodiscard]] bool any() const {
    return crash_rate > 0.0 || !explicit_crashes.empty() || probe_fail_rate > 0.0 ||
           post_drop_rate > 0.0 || post_delay_rate > 0.0 || kill_at_round != kNever;
  }

  static FaultPlan none() { return {}; }

  /// Parse the CLI grammar above. Throws std::invalid_argument on
  /// malformed clauses or out-of-range rates.
  static FaultPlan parse(std::string_view spec);

  /// The crash window plan `seed` deals to player `p` (kNever window if
  /// the player is spared). Deterministic in (seed, p).
  [[nodiscard]] CrashWindow crash_window(PlayerId p) const;
};

/// Everything the injector observed, in deterministic order: counters
/// plus sorted player sets. Two runs of the same plan+workload compare
/// equal (and serialize byte-identically via to_string()).
struct FaultReport {
  std::uint64_t probe_failures = 0;  ///< transient Probe failures fired
  std::uint64_t retries = 0;         ///< retry attempts spent by wrappers
  std::uint64_t fallback_reads = 0;  ///< degraded reads served from posted values
  std::uint64_t posts_dropped = 0;
  std::uint64_t posts_delayed = 0;
  std::vector<PlayerId> crashed;    ///< crash-stopped at least once
  std::vector<PlayerId> recovered;  ///< came back from a crash
  std::vector<PlayerId> degraded;   ///< abandoned probing (retry exhaustion)
  std::vector<PlayerId> orphaned;   ///< lost their quorum, adopted from survivors

  bool operator==(const FaultReport&) const = default;

  /// Stable single-line-per-field rendering (bytes identical across
  /// runs of the same plan and workload).
  [[nodiscard]] std::string to_string() const;
};

}  // namespace tmwia::faults
