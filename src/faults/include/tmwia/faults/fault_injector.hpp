// FaultInjector: the runtime half of the fault model. One injector is
// attached to a ProbeOracle and shared by every execution layer; all of
// its decisions are stateless hashes of (plan seed, player, event
// index), so a fixed plan replays byte-identically regardless of thread
// scheduling.
//
// Two clocks drive crash windows:
//  * attempt clock (default) — per-player count of Probe attempts; used
//    by the centrally-simulated phases, where "round r" for player p
//    means p's r-th probe. Crash-stop is permanent in this mode.
//  * round clock — engaged by RoundScheduler via begin_round(); crash
//    windows [at, recover) are then global lockstep rounds and recovery
//    works.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "tmwia/faults/fault_plan.hpp"

namespace tmwia::faults {

/// Thrown by ProbeOracle::probe when the prober is crash-stopped. The
/// attempt is not charged (a dead player sends nothing).
class PlayerCrashedError : public std::runtime_error {
 public:
  explicit PlayerCrashedError(PlayerId p)
      : std::runtime_error("player " + std::to_string(p) + " is crash-stopped"), player(p) {}
  PlayerId player;
};

/// Thrown by ProbeOracle::probe on a transient injected failure. The
/// attempt *is* charged to invocations (the probe was sent, the result
/// lost), so retry costs show up in the round accounting.
class ProbeFailedError : public std::runtime_error {
 public:
  ProbeFailedError(PlayerId p, ObjectId o)
      : std::runtime_error("probe (" + std::to_string(p) + ", " + std::to_string(o) +
                           ") failed transiently"),
        player(p),
        object(o) {}
  PlayerId player;
  ObjectId object;
};

class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, std::size_t n_players);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] std::size_t players() const { return n_; }

  /// Outcome of one Probe attempt by `p` (advances p's attempt clock).
  enum class Attempt : std::uint8_t { kOk, kFail, kCrashed };
  Attempt on_probe_attempt(PlayerId p);

  /// Crash-stopped right now?
  [[nodiscard]] bool is_down(PlayerId p) const {
    return down_[p].load(std::memory_order_relaxed) != 0;
  }
  /// Gave up probing (crash or retry exhaustion)? Failed players are
  /// excluded from votes and skipped by the degradation-aware phases.
  [[nodiscard]] bool is_failed(PlayerId p) const {
    return is_down(p) || degraded_[p].load(std::memory_order_relaxed) != 0;
  }

  /// A retry wrapper spent one retry on behalf of `p`.
  void note_retry(PlayerId p);
  /// `p` exhausted its retry budget and degrades to billboard re-reads.
  void mark_degraded(PlayerId p);
  /// A degraded read was served from posted values instead of a probe.
  void note_fallback_read(PlayerId p);
  /// `p` lost its committee/candidate quorum and fell back to adopting
  /// from surviving posts.
  void note_orphan(PlayerId p);
  [[nodiscard]] bool is_orphaned(PlayerId p) const {
    return orphaned_[p].load(std::memory_order_relaxed) != 0;
  }

  /// Does `p`'s crash window schedule a recovery? (Schedulers use this
  /// to decide whether a down player still keeps the run alive.)
  [[nodiscard]] bool may_recover(PlayerId p) const { return windows_[p].recover != kNever; }

  /// Engage the round clock: recompute crash states for `round`,
  /// firing crash/recovery transitions. Called by RoundScheduler at the
  /// top of every round.
  void begin_round(std::uint64_t round);

  /// Should this publication by `p` be lost? Pure in (seed, p, tag):
  /// voting paths consult it with the same tag as the publishing path
  /// so both sides agree. Does not count the event — the publishing
  /// path counts via note_post_dropped.
  [[nodiscard]] bool post_lost(PlayerId p, std::uint64_t channel_tag) const;
  void note_post_dropped();

  /// Rounds to delay the seq-th surviving post by `p` (0: publish now).
  /// Counts delayed posts. Sequence-numbered per player, so scheduler
  /// executions get fresh draws per post.
  std::uint64_t delay_for_post(PlayerId p);

  /// Snapshot the report (player sets sorted ascending).
  [[nodiscard]] FaultReport report() const;

  /// FNV-1a hash of a channel name, for post_lost tags.
  static std::uint64_t channel_tag(std::string_view channel);

  /// Kill switch for durability drills: when the plan carries
  /// kill=R and `cum_round >= R`, raise SIGKILL — the process dies
  /// exactly as a crashed shard would, with no destructors and no
  /// flushing. Checkpoint cadence code calls this *after* a checkpoint
  /// write so the drill always has a file to resume from.
  void maybe_kill(std::uint64_t cum_round);

  /// Every mutable cursor of the injector, for checkpointing. The
  /// resolved crash windows are not part of the state — they are a pure
  /// function of the plan, recomputed on construction.
  struct State {
    std::vector<std::uint64_t> attempts;
    std::vector<std::uint64_t> post_seq;
    std::vector<std::uint8_t> down, degraded, orphaned, was_crashed, was_recovered;
    std::uint64_t probe_failures = 0;
    std::uint64_t retries = 0;
    std::uint64_t fallback_reads = 0;
    std::uint64_t posts_dropped = 0;
    std::uint64_t posts_delayed = 0;
  };
  [[nodiscard]] State export_state() const;
  /// Throws std::invalid_argument on player-count mismatch.
  void restore_state(const State& st);

 private:
  FaultPlan plan_;
  std::size_t n_;
  std::vector<CrashWindow> windows_;  ///< resolved per-player crash windows

  std::atomic<bool> round_clock_{false};

  std::vector<std::atomic<std::uint64_t>> attempts_;
  std::vector<std::atomic<std::uint64_t>> post_seq_;
  std::vector<std::atomic<std::uint8_t>> down_;
  std::vector<std::atomic<std::uint8_t>> degraded_;
  std::vector<std::atomic<std::uint8_t>> orphaned_;
  std::vector<std::atomic<std::uint8_t>> was_crashed_;
  std::vector<std::atomic<std::uint8_t>> was_recovered_;

  std::atomic<std::uint64_t> probe_failures_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> fallback_reads_{0};
  std::atomic<std::uint64_t> posts_dropped_{0};
  std::atomic<std::uint64_t> posts_delayed_{0};
};

}  // namespace tmwia::faults
