#include "tmwia/faults/fault_injector.hpp"

#include <csignal>
#include <stdexcept>

namespace tmwia::faults {
namespace {

std::uint64_t mix(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  std::uint64_t z = a * 0x9e3779b97f4a7c15ull + b * 0xbf58476d1ce4e5b9ull + c + 1;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

bool bernoulli_hash(std::uint64_t h, double p) {
  return static_cast<double>(h >> 11) * 0x1.0p-53 < p;
}

void set_flag(std::vector<std::atomic<std::uint8_t>>& flags, PlayerId p) {
  flags[p].store(1, std::memory_order_relaxed);
}

std::vector<PlayerId> flagged(const std::vector<std::atomic<std::uint8_t>>& flags) {
  std::vector<PlayerId> out;
  for (PlayerId p = 0; p < flags.size(); ++p) {
    if (flags[p].load(std::memory_order_relaxed) != 0) out.push_back(p);
  }
  return out;
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan, std::size_t n_players)
    : plan_(std::move(plan)),
      n_(n_players),
      windows_(n_players),
      attempts_(n_players),
      post_seq_(n_players),
      down_(n_players),
      degraded_(n_players),
      orphaned_(n_players),
      was_crashed_(n_players),
      was_recovered_(n_players) {
  for (PlayerId p = 0; p < n_; ++p) windows_[p] = plan_.crash_window(p);
}

FaultInjector::Attempt FaultInjector::on_probe_attempt(PlayerId p) {
  const auto attempt = attempts_[p].fetch_add(1, std::memory_order_relaxed);
  if (!round_clock_.load(std::memory_order_relaxed)) {
    // Attempt-clock mode: crash at the plan's round, permanently (the
    // centrally-simulated phases have no global clock to recover on).
    if (attempt >= windows_[p].at && down_[p].load(std::memory_order_relaxed) == 0) {
      set_flag(down_, p);
      set_flag(was_crashed_, p);
    }
  }
  if (is_down(p)) return Attempt::kCrashed;
  if (plan_.probe_fail_rate > 0.0 &&
      bernoulli_hash(mix(plan_.seed ^ 0xFA17ull, p, attempt), plan_.probe_fail_rate)) {
    probe_failures_.fetch_add(1, std::memory_order_relaxed);
    return Attempt::kFail;
  }
  return Attempt::kOk;
}

void FaultInjector::note_retry(PlayerId p) {
  (void)p;
  retries_.fetch_add(1, std::memory_order_relaxed);
}

void FaultInjector::mark_degraded(PlayerId p) { set_flag(degraded_, p); }

void FaultInjector::note_fallback_read(PlayerId p) {
  (void)p;
  fallback_reads_.fetch_add(1, std::memory_order_relaxed);
}

void FaultInjector::note_orphan(PlayerId p) { set_flag(orphaned_, p); }

void FaultInjector::begin_round(std::uint64_t round) {
  round_clock_.store(true, std::memory_order_relaxed);
  for (PlayerId p = 0; p < n_; ++p) {
    const auto& w = windows_[p];
    const bool down_now = round >= w.at && round < w.recover;
    const bool was_down = down_[p].load(std::memory_order_relaxed) != 0;
    if (down_now && !was_down) {
      set_flag(down_, p);
      set_flag(was_crashed_, p);
    } else if (!down_now && was_down && round >= w.recover) {
      down_[p].store(0, std::memory_order_relaxed);
      set_flag(was_recovered_, p);
    }
  }
}

bool FaultInjector::post_lost(PlayerId p, std::uint64_t tag) const {
  return plan_.post_drop_rate > 0.0 &&
         bernoulli_hash(mix(plan_.seed ^ 0xD209ull, p, tag), plan_.post_drop_rate);
}

void FaultInjector::note_post_dropped() {
  posts_dropped_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t FaultInjector::delay_for_post(PlayerId p) {
  if (plan_.post_delay_rate <= 0.0 || plan_.post_delay_rounds == 0) return 0;
  const auto seq = post_seq_[p].fetch_add(1, std::memory_order_relaxed);
  if (!bernoulli_hash(mix(plan_.seed ^ 0xDE1A1ull, p, seq), plan_.post_delay_rate)) return 0;
  posts_delayed_.fetch_add(1, std::memory_order_relaxed);
  return plan_.post_delay_rounds;
}

FaultReport FaultInjector::report() const {
  FaultReport r;
  r.probe_failures = probe_failures_.load(std::memory_order_relaxed);
  r.retries = retries_.load(std::memory_order_relaxed);
  r.fallback_reads = fallback_reads_.load(std::memory_order_relaxed);
  r.posts_dropped = posts_dropped_.load(std::memory_order_relaxed);
  r.posts_delayed = posts_delayed_.load(std::memory_order_relaxed);
  r.crashed = flagged(was_crashed_);
  r.recovered = flagged(was_recovered_);
  r.degraded = flagged(degraded_);
  r.orphaned = flagged(orphaned_);
  return r;
}

void FaultInjector::maybe_kill(std::uint64_t cum_round) {
  if (plan_.kill_at_round == kNever || cum_round < plan_.kill_at_round) return;
  // Die like a real shard: SIGKILL runs no handlers, no destructors,
  // flushes nothing. Anything not already checkpointed is gone.
  (void)std::raise(SIGKILL);
}

namespace {

std::vector<std::uint64_t> load_all(const std::vector<std::atomic<std::uint64_t>>& cells) {
  std::vector<std::uint64_t> out(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    out[i] = cells[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<std::uint8_t> load_flags(const std::vector<std::atomic<std::uint8_t>>& cells) {
  std::vector<std::uint8_t> out(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    out[i] = cells[i].load(std::memory_order_relaxed);
  }
  return out;
}

template <typename T>
void store_all(std::vector<std::atomic<T>>& cells, const std::vector<T>& values) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    cells[i].store(values[i], std::memory_order_relaxed);
  }
}

}  // namespace

FaultInjector::State FaultInjector::export_state() const {
  State st;
  st.attempts = load_all(attempts_);
  st.post_seq = load_all(post_seq_);
  st.down = load_flags(down_);
  st.degraded = load_flags(degraded_);
  st.orphaned = load_flags(orphaned_);
  st.was_crashed = load_flags(was_crashed_);
  st.was_recovered = load_flags(was_recovered_);
  st.probe_failures = probe_failures_.load(std::memory_order_relaxed);
  st.retries = retries_.load(std::memory_order_relaxed);
  st.fallback_reads = fallback_reads_.load(std::memory_order_relaxed);
  st.posts_dropped = posts_dropped_.load(std::memory_order_relaxed);
  st.posts_delayed = posts_delayed_.load(std::memory_order_relaxed);
  return st;
}

void FaultInjector::restore_state(const State& st) {
  if (st.attempts.size() != n_ || st.post_seq.size() != n_ || st.down.size() != n_ ||
      st.degraded.size() != n_ || st.orphaned.size() != n_ || st.was_crashed.size() != n_ ||
      st.was_recovered.size() != n_) {
    throw std::invalid_argument("FaultInjector::restore_state: player count mismatch");
  }
  store_all(attempts_, st.attempts);
  store_all(post_seq_, st.post_seq);
  store_all(down_, st.down);
  store_all(degraded_, st.degraded);
  store_all(orphaned_, st.orphaned);
  store_all(was_crashed_, st.was_crashed);
  store_all(was_recovered_, st.was_recovered);
  probe_failures_.store(st.probe_failures, std::memory_order_relaxed);
  retries_.store(st.retries, std::memory_order_relaxed);
  fallback_reads_.store(st.fallback_reads, std::memory_order_relaxed);
  posts_dropped_.store(st.posts_dropped, std::memory_order_relaxed);
  posts_delayed_.store(st.posts_delayed, std::memory_order_relaxed);
}

std::uint64_t FaultInjector::channel_tag(std::string_view channel) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : channel) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace tmwia::faults
