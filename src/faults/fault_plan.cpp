#include "tmwia/faults/fault_plan.hpp"

#include <charconv>
#include <sstream>
#include <stdexcept>

namespace tmwia::faults {
namespace {

// The same stateless SplitMix64-style mixer ProbeOracle uses for noise
// draws: deterministic in its inputs, independent across tags.
std::uint64_t mix(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  std::uint64_t z = a * 0x9e3779b97f4a7c15ull + b * 0xbf58476d1ce4e5b9ull + c + 1;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double unit_interval(std::uint64_t h) { return static_cast<double>(h >> 11) * 0x1.0p-53; }

[[noreturn]] void bad(const std::string& what) {
  throw std::invalid_argument("FaultPlan::parse: " + what);
}

double parse_rate(std::string_view s, const std::string& clause) {
  double v = 0.0;
  const auto* end = s.data() + s.size();
  const auto res = std::from_chars(s.data(), end, v);
  if (res.ec != std::errc{} || res.ptr != end || v < 0.0 || v > 1.0) {
    bad("rate out of [0,1] in '" + clause + "'");
  }
  return v;
}

std::uint64_t parse_u64(std::string_view s, const std::string& clause) {
  std::uint64_t v = 0;
  const auto* end = s.data() + s.size();
  const auto res = std::from_chars(s.data(), end, v);
  if (res.ec != std::errc{} || res.ptr != end) bad("bad integer in '" + clause + "'");
  return v;
}

}  // namespace

FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  while (!spec.empty()) {
    const auto comma = spec.find(',');
    std::string_view clause = spec.substr(0, comma);
    spec = comma == std::string_view::npos ? std::string_view{} : spec.substr(comma + 1);
    if (clause.empty()) continue;

    const auto eq = clause.find('=');
    if (eq == std::string_view::npos) bad("clause '" + std::string(clause) + "' has no '='");
    const std::string key(clause.substr(0, eq));
    const std::string_view value = clause.substr(eq + 1);
    const std::string clause_str(clause);

    if (key == "seed") {
      plan.seed = parse_u64(value, clause_str);
    } else if (key == "crash") {
      // crash=R@A or crash=R@A-B (round drawn uniformly in [A, B]).
      const auto at = value.find('@');
      plan.crash_rate = parse_rate(value.substr(0, at), clause_str);
      if (at != std::string_view::npos) {
        const auto range = value.substr(at + 1);
        const auto dash = range.find('-');
        plan.crash_round_lo = parse_u64(range.substr(0, dash), clause_str);
        plan.crash_round_hi = dash == std::string_view::npos
                                  ? plan.crash_round_lo
                                  : parse_u64(range.substr(dash + 1), clause_str);
        if (plan.crash_round_hi < plan.crash_round_lo) {
          bad("empty round range in '" + clause_str + "'");
        }
      }
    } else if (key == "recover") {
      plan.recover_after = parse_u64(value, clause_str);
    } else if (key == "probe") {
      plan.probe_fail_rate = parse_rate(value, clause_str);
    } else if (key == "retry") {
      plan.retry_budget = static_cast<std::size_t>(parse_u64(value, clause_str));
    } else if (key == "drop") {
      plan.post_drop_rate = parse_rate(value, clause_str);
    } else if (key == "delay") {
      // delay=R@K: delay w.p. R by K rounds.
      const auto at = value.find('@');
      if (at == std::string_view::npos) bad("'" + clause_str + "' needs RATE@ROUNDS");
      plan.post_delay_rate = parse_rate(value.substr(0, at), clause_str);
      plan.post_delay_rounds = parse_u64(value.substr(at + 1), clause_str);
    } else if (key == "kill") {
      plan.kill_at_round = parse_u64(value, clause_str);
    } else {
      bad("unknown clause '" + clause_str + "'");
    }
  }
  return plan;
}

CrashWindow FaultPlan::crash_window(PlayerId p) const {
  CrashWindow w;
  if (crash_rate > 0.0 && unit_interval(mix(seed, 0xC2A5Full, p)) < crash_rate) {
    const std::uint64_t span = crash_round_hi - crash_round_lo + 1;
    w.at = crash_round_lo + mix(seed, 0x20F7Dull, p) % span;
    if (recover_after != kNever && w.at <= kNever - recover_after) {
      w.recover = w.at + recover_after;
    }
  }
  for (const auto& [player, window] : explicit_crashes) {
    if (player == p) w = window;
  }
  return w;
}

std::string FaultReport::to_string() const {
  std::ostringstream os;
  os << "probe_failures: " << probe_failures << '\n'
     << "retries: " << retries << '\n'
     << "fallback_reads: " << fallback_reads << '\n'
     << "posts_dropped: " << posts_dropped << '\n'
     << "posts_delayed: " << posts_delayed << '\n';
  const auto list = [&os](const char* name, const std::vector<PlayerId>& ids) {
    os << name << " (" << ids.size() << "):";
    for (const auto p : ids) os << ' ' << p;
    os << '\n';
  };
  list("crashed", crashed);
  list("recovered", recovered);
  list("degraded", degraded);
  list("orphaned", orphaned);
  return os.str();
}

}  // namespace tmwia::faults
